//! The FactorHD factorization algorithm (§III-B, Algorithm 1).
//!
//! Factorization works by *label elimination*: binding the scene hypervector
//! with `LABEL_j` for every unselected class `j` collapses those clauses to
//! near-constant masks, leaving a vector still correlated with the selected
//! class's bundled items (Eq. 1 of the paper). From there:
//!
//! * **Rep 1 / Rep 2** (single object): pick the arg-max item per class,
//!   then descend level by level, searching only the children codebook of
//!   each chosen item — `O(Σ M_ℓ)` similarity checks per class instead of
//!   the `M^F` combination scans class–class models need.
//! * **Rep 3** (multiple objects, count unknown): keep every item whose
//!   similarity clears a threshold `TH`, bind candidate items across
//!   classes (one per class), accept combinations whose product similarity
//!   to the scene clears `TH`, reconstruct each accepted object's full
//!   hypervector, subtract it, and loop until nothing clears `TH`. The
//!   subtraction step resolves both the "superposition catastrophe" and
//!   "the problem of 2".

use crate::{Encoder, FactorHdError, ItemPath, ObjectSpec, Scene, Taxonomy, ThresholdPolicy};
use hdc::stage::{Stage, StageTimer};
use hdc::{AccumHv, Bind, BipolarHv, CodebookScan, Similarity, TernaryHv};
use std::sync::Arc;

/// Builds the per-class label-elimination masks
/// `unbind_keys[i] = ⊙_{j≠i} LABEL_j`.
///
/// The masks depend only on the taxonomy, so callers that serve many
/// requests against one taxonomy (e.g. `factorhd-engine`) build them once
/// and hand them to every [`Factorizer::with_parts`] instead of paying the
/// `O(C·D)` rebuild per request.
pub fn build_unbind_keys(taxonomy: &Taxonomy) -> Vec<BipolarHv> {
    let f = taxonomy.num_classes();
    let mut all = BipolarHv::ones(taxonomy.dim());
    for i in 0..f {
        all.bind_assign(taxonomy.label(i));
    }
    (0..f)
        .map(|i| {
            // ⊙_{j≠i} L_j = (⊙_j L_j) ⊙ L_i  (labels are self-inverse).
            all.bind(taxonomy.label(i))
        })
        .collect()
}

/// A pluggable memo for the Rep-3 reconstruct-and-exclude step.
///
/// `factorize_multi` re-encodes each candidate object to score and then
/// subtract it; the encoding depends only on `(taxonomy, object)`, so a
/// serving layer can memoize it across requests. Implementations must
/// return exactly what [`Encoder::encode_object`] would (the factorizer's
/// outputs stay bit-identical with or without a cache). The `Arc` return
/// lets cache hits stay allocation-free.
pub trait ReconstructionCache: Send + Sync {
    /// Returns the clause-product hypervector of `object`, encoding it on
    /// a cache miss.
    ///
    /// # Errors
    ///
    /// Propagates [`Encoder::encode_object`] errors.
    fn get_or_encode(
        &self,
        encoder: &Encoder<'_>,
        object: &ObjectSpec,
    ) -> Result<Arc<TernaryHv>, FactorHdError>;
}

/// Tuning knobs for [`Factorizer`].
///
/// The defaults factorize the paper's Rep-1..Rep-3 settings; construct with
/// struct-update syntax for overrides:
///
/// ```
/// use factorhd_core::{FactorizeConfig, ThresholdPolicy};
/// let config = FactorizeConfig {
///     threshold: ThresholdPolicy::Fixed(0.06),
///     max_objects: 4,
///     ..FactorizeConfig::default()
/// };
/// assert_eq!(config.max_objects, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorizeConfig {
    /// Threshold-similarity policy for multi-object factorization.
    pub threshold: ThresholdPolicy,
    /// Upper bound on objects extracted from one scene (cycle guard).
    pub max_objects: usize,
    /// Beam width for the level-descent over accepted combinations.
    pub beam_width: usize,
    /// Cap on candidate combinations tested per level (guards pathological
    /// threshold settings; exceeding it sets
    /// [`FactorizeStats::truncated_combinations`]).
    pub max_combinations: usize,
    /// Whether to test the global NULL vector as an "absent class"
    /// candidate.
    pub detect_null: bool,
    /// Factorize only this many subclass levels (`None` = all levels).
    pub max_depth: Option<usize>,
    /// Single-object hierarchy refinement width: the top-`refine_width`
    /// level candidates are kept and re-scored with their children's
    /// evidence (cumulative similarity). `1` reproduces the plain greedy
    /// arg-max descent; the default of 4 combines evidence across levels,
    /// which roughly halves the dimension needed for a given Rep-2
    /// accuracy at a cost of `refine_width × M_child` extra similarity
    /// checks per level.
    pub refine_width: usize,
    /// Final acceptance bar for multi-object extraction: a candidate
    /// object is emitted only if its **full clause reconstruction**
    /// explains at least this fraction of one object's expected
    /// self-similarity in the residual. The reconstruction signal is `ρ`
    /// (the clause-density product) for a true object versus at most
    /// `ρ/2` when any single item is wrong, so the default of `0.75`
    /// sits in the middle of a ~16σ margin at the paper's dimensions.
    pub accept_threshold: f64,
}

impl Default for FactorizeConfig {
    fn default() -> Self {
        FactorizeConfig {
            threshold: ThresholdPolicy::default(),
            max_objects: 16,
            beam_width: 8,
            max_combinations: 4096,
            detect_null: true,
            max_depth: None,
            refine_width: 4,
            accept_threshold: 0.75,
        }
    }
}

/// Operation counters collected during factorization; the efficiency
/// comparisons of Fig. 4 report these alongside wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorizeStats {
    /// Item-similarity measurements performed.
    pub similarity_checks: u64,
    /// Candidate combinations bound and tested against the scene.
    pub combination_tests: u64,
    /// Label-unbinding operations on the scene vector.
    pub unbind_ops: u64,
    /// Objects extracted (multi-object factorization only).
    pub objects_found: usize,
    /// Set when the per-level combination cap was hit.
    pub truncated_combinations: bool,
}

/// The factorization of one class: the recovered path (or `None` for an
/// absent class) and the similarity that selected it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecode {
    /// The class index.
    pub class: usize,
    /// Recovered subclass path, `None` when the NULL vector won.
    pub path: Option<ItemPath>,
    /// The winning similarity at the deepest decoded level.
    pub sim: f64,
}

/// A fully factorized object plus its acceptance confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedObject {
    object: ObjectSpec,
    confidence: f64,
}

impl DecodedObject {
    /// The recovered object.
    pub fn object(&self) -> &ObjectSpec {
        &self.object
    }

    /// Consumes the decode, returning the recovered object.
    pub fn into_object(self) -> ObjectSpec {
        self.object
    }

    /// The similarity that accepted this object (combination similarity for
    /// Rep 3, minimum per-class winning similarity for Rep 1/2).
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Reassembles a decode from its parts. Factorization is the only
    /// producer of decodes inside this crate; this constructor exists
    /// for transport layers (e.g. the network protocol) that serialize
    /// a decode on one side and must rebuild the identical value on the
    /// other.
    pub fn from_parts(object: ObjectSpec, confidence: f64) -> Self {
        DecodedObject { object, confidence }
    }
}

/// The result of multi-object factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedScene {
    /// Objects in extraction order (strongest first).
    pub objects: Vec<DecodedObject>,
    /// Operation counters.
    pub stats: FactorizeStats,
    /// Euclidean norm of the residual after all subtractions (≈ 0 when the
    /// scene was fully explained).
    pub residual_norm: f64,
}

impl DecodedScene {
    /// The recovered objects as a [`Scene`].
    pub fn to_scene(&self) -> Scene {
        self.objects.iter().map(|d| d.object.clone()).collect()
    }
}

/// Per-class candidate during Rep-3 combination search.
#[derive(Debug, Clone)]
struct Candidate {
    /// `None` = the NULL vector (class absent).
    path: Option<ItemPath>,
    /// The candidate's current deepest item vector (NULL for absent).
    item: BipolarHv,
    sim: f64,
    /// Whether this candidate can still descend further levels.
    exhausted: bool,
}

/// One beam entry: a partial object (per-class candidates) and its latest
/// combination similarity.
#[derive(Debug, Clone)]
struct Combo {
    slots: Vec<Candidate>,
    sim: f64,
}

/// Factorizes FactorHD scene hypervectors back into objects.
///
/// Borrows the [`Taxonomy`]; cheap to construct (precomputes one label
/// unbind key per class, or reuses keys supplied via
/// [`Factorizer::with_parts`]).
///
/// Every codebook scan — the level-1 arg-max, the hierarchy descent, and
/// the Rep-3 threshold selection — routes through the codebooks' packed
/// shard tables ([`hdc::CodebookScan`]) whenever the query has a lossless
/// word-level form, with results bit-identical to the scalar reference
/// scans.
///
/// ```
/// use factorhd_core::{Encoder, FactorizeConfig, Factorizer, Scene, TaxonomyBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let taxonomy = TaxonomyBuilder::new(2048)
///     .uniform_classes(3, &[8])
///     .build()?;
/// let mut rng = hdc::rng_from_seed(5);
/// let object = taxonomy.sample_object(&mut rng);
/// let hv = Encoder::new(&taxonomy).encode_scene(&Scene::single(object.clone()))?;
///
/// let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
/// let decoded = factorizer.factorize_single(&hv)?;
/// assert_eq!(decoded.object(), &object);
/// # Ok(())
/// # }
/// ```
pub struct Factorizer<'a> {
    taxonomy: &'a Taxonomy,
    encoder: Encoder<'a>,
    config: FactorizeConfig,
    /// `unbind_keys[i] = ⊙_{j≠i} LABEL_j`.
    unbind_keys: Arc<Vec<BipolarHv>>,
    /// Optional memo for Rep-3 object reconstructions.
    reconstruction: Option<Arc<dyn ReconstructionCache>>,
}

impl<'a> Factorizer<'a> {
    /// Creates a factorizer over `taxonomy` with the given configuration,
    /// building the label-elimination masks from scratch.
    pub fn new(taxonomy: &'a Taxonomy, config: FactorizeConfig) -> Self {
        Factorizer::with_parts(
            taxonomy,
            config,
            Arc::new(build_unbind_keys(taxonomy)),
            None,
        )
        .expect("freshly built keys match the taxonomy")
    }

    /// Creates a factorizer from pre-built parts: memoized label-
    /// elimination masks ([`build_unbind_keys`]) and an optional
    /// [`ReconstructionCache`]. This is the cache-injection entry point
    /// serving layers use to amortize per-taxonomy setup across requests.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::InvalidConfig`] when `unbind_keys` does not match
    /// the taxonomy's class count, or
    /// [`FactorHdError::DimensionMismatch`] when a key has the wrong
    /// dimension.
    pub fn with_parts(
        taxonomy: &'a Taxonomy,
        config: FactorizeConfig,
        unbind_keys: Arc<Vec<BipolarHv>>,
        reconstruction: Option<Arc<dyn ReconstructionCache>>,
    ) -> Result<Self, FactorHdError> {
        if unbind_keys.len() != taxonomy.num_classes() {
            return Err(FactorHdError::InvalidConfig(format!(
                "{} unbind keys supplied for {} classes",
                unbind_keys.len(),
                taxonomy.num_classes()
            )));
        }
        if let Some(bad) = unbind_keys.iter().find(|k| k.dim() != taxonomy.dim()) {
            return Err(FactorHdError::DimensionMismatch {
                expected: taxonomy.dim(),
                actual: bad.dim(),
            });
        }
        Ok(Factorizer {
            taxonomy,
            encoder: Encoder::new(taxonomy),
            config,
            unbind_keys,
            reconstruction,
        })
    }

    /// Encodes `object`'s reconstruction, via the injected cache when one
    /// is present.
    fn reconstruct(&self, object: &ObjectSpec) -> Result<Arc<TernaryHv>, FactorHdError> {
        match &self.reconstruction {
            Some(cache) => cache.get_or_encode(&self.encoder, object),
            None => Ok(Arc::new(self.encoder.encode_object(object)?)),
        }
    }

    /// The taxonomy this factorizer decodes against.
    pub fn taxonomy(&self) -> &'a Taxonomy {
        self.taxonomy
    }

    /// The active configuration.
    pub fn config(&self) -> &FactorizeConfig {
        &self.config
    }

    /// The threshold the configured policy resolves to for this taxonomy.
    pub fn resolved_threshold(&self) -> f64 {
        self.config.threshold.resolve(self.taxonomy)
    }

    fn check_dim(&self, dim: usize) -> Result<(), FactorHdError> {
        if dim != self.taxonomy.dim() {
            return Err(FactorHdError::DimensionMismatch {
                expected: self.taxonomy.dim(),
                actual: dim,
            });
        }
        Ok(())
    }

    fn depth_limit(&self, class: usize) -> usize {
        let levels = self.taxonomy.levels(class);
        self.config.max_depth.map_or(levels, |d| d.min(levels))
    }

    // ------------------------------------------------------------------
    // Single-object factorization (Rep 1 / Rep 2)
    // ------------------------------------------------------------------

    /// Factorizes a single-object hypervector: arg-max item per class, then
    /// hierarchical descent through the subclass levels.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::DimensionMismatch`] on a wrong-size query.
    pub fn factorize_single(&self, hv: &AccumHv) -> Result<DecodedObject, FactorHdError> {
        self.factorize_single_traced(hv).map(|(obj, _)| obj)
    }

    /// [`Factorizer::factorize_single`] plus operation counters.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::DimensionMismatch`] on a wrong-size query.
    pub fn factorize_single_traced(
        &self,
        hv: &AccumHv,
    ) -> Result<(DecodedObject, FactorizeStats), FactorHdError> {
        let _span = StageTimer::enter(Stage::Rerank);
        self.check_dim(hv.dim())?;
        let mut stats = FactorizeStats::default();
        let classes: Vec<usize> = (0..self.taxonomy.num_classes()).collect();
        let decodes = self.decode_classes(hv, &classes, &mut stats)?;
        let mut confidence = f64::INFINITY;
        let assignments = decodes
            .into_iter()
            .map(|d| {
                confidence = confidence.min(d.sim);
                d.path
            })
            .collect();
        Ok((
            DecodedObject {
                object: ObjectSpec::new(assignments),
                confidence,
            },
            stats,
        ))
    }

    /// Convenience wrapper factorizing a clipped single-object vector.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::DimensionMismatch`] on a wrong-size query.
    pub fn factorize_ternary(&self, hv: &TernaryHv) -> Result<DecodedObject, FactorHdError> {
        self.factorize_single(&hv.to_accum())
    }

    /// [`Factorizer::factorize_single`] for a whole batch of scenes in one
    /// call, per-query results **bit-identical** to the one-at-a-time
    /// loop.
    ///
    /// When every query has a lossless ternary form (any single-object
    /// scene does), the level-1 codebook scans run grouped through
    /// [`hdc::CodebookScan::scan_top_k_many`]: each codebook's packed
    /// shard table is traversed once per batch instead of once per query,
    /// which is what a serving planner buys by grouping requests of the
    /// same kind. Queries without a lossless form (or any dimension
    /// mismatch in the batch) fall back to the per-query path, still
    /// returning one `Result` per input in input order.
    pub fn factorize_single_many(
        &self,
        hvs: &[&AccumHv],
    ) -> Vec<Result<DecodedObject, FactorHdError>> {
        let mut ternaries = Vec::with_capacity(hvs.len());
        for hv in hvs {
            if hv.dim() != self.taxonomy.dim() {
                return self.factorize_single_fallback(hvs);
            }
            match hv.to_ternary_lossless() {
                Some(t) => ternaries.push(t),
                None => return self.factorize_single_fallback(hvs),
            }
        }
        match self.decode_singles_grouped(&ternaries) {
            Ok(decoded) => decoded.into_iter().map(Ok).collect(),
            // Structurally unreachable for a built taxonomy; fall back so
            // the error lands on the query that caused it.
            Err(_) => self.factorize_single_fallback(hvs),
        }
    }

    /// The per-query reference path of [`Factorizer::factorize_single_many`].
    fn factorize_single_fallback(
        &self,
        hvs: &[&AccumHv],
    ) -> Vec<Result<DecodedObject, FactorHdError>> {
        hvs.iter().map(|hv| self.factorize_single(hv)).collect()
    }

    /// Grouped decode over lossless ternary queries: classes in the outer
    /// loop, so each level-1 codebook is scanned once for the whole batch
    /// ([`hdc::CodebookScan::scan_top_k_many`]); the NULL check and the
    /// per-query beam descent reuse the exact per-query code path.
    fn decode_singles_grouped(
        &self,
        queries: &[TernaryHv],
    ) -> Result<Vec<DecodedObject>, FactorHdError> {
        let _span = StageTimer::enter(Stage::Rerank);
        let width = self.config.refine_width.max(1);
        let mut stats = FactorizeStats::default();
        let mut per_query: Vec<Vec<ClassDecode>> = queries
            .iter()
            .map(|_| Vec::with_capacity(self.taxonomy.num_classes()))
            .collect();
        for class in 0..self.taxonomy.num_classes() {
            let unbound: Vec<TernaryHv> = queries
                .iter()
                .map(|q| q.bind(&self.unbind_keys[class]))
                .collect();
            let top = self.taxonomy.codebook(class, &[])?;
            let hits_many = TernaryHv::scan_top_k_many(&top, &unbound, width);
            for ((q, hits), decodes) in unbound.iter().zip(&hits_many).zip(&mut per_query) {
                decodes.push(self.decode_class_from_hits(q, class, hits, &mut stats)?);
            }
        }
        Ok(per_query
            .into_iter()
            .map(|decodes| {
                let mut confidence = f64::INFINITY;
                let assignments = decodes
                    .into_iter()
                    .map(|d| {
                        confidence = confidence.min(d.sim);
                        d.path
                    })
                    .collect();
                DecodedObject {
                    object: ObjectSpec::new(assignments),
                    confidence,
                }
            })
            .collect())
    }

    /// Membership probe entry point: "does the scene contain an object
    /// with these `(class, item path)` constraints, with `absent` classes
    /// NULL?" — a [`crate::SceneQuery`] built and evaluated in one call,
    /// so serving layers have a single factorizer-level entry per query
    /// shape.
    ///
    /// # Errors
    ///
    /// The conditions of [`crate::SceneQuery::with_item`] /
    /// [`crate::SceneQuery::with_absent`] / [`crate::SceneQuery::evaluate`].
    pub fn evaluate_membership(
        &self,
        scene: &AccumHv,
        items: &[(usize, ItemPath)],
        absent: &[usize],
    ) -> Result<crate::QueryAnswer, FactorHdError> {
        let _span = StageTimer::enter(Stage::Rerank);
        let mut query = crate::SceneQuery::new(self.taxonomy);
        for (class, path) in items {
            query = query.with_item(*class, path.clone())?;
        }
        for &class in absent {
            query = query.with_absent(class)?;
        }
        query.evaluate(scene)
    }

    /// **Partial factorization**: decodes only `classes`, skipping all
    /// similarity work for the rest — the capability the paper contrasts
    /// with C-C models' mandatory full factorization.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::DimensionMismatch`] or
    /// [`FactorHdError::ClassOutOfBounds`].
    pub fn factorize_classes(
        &self,
        hv: &AccumHv,
        classes: &[usize],
    ) -> Result<Vec<ClassDecode>, FactorHdError> {
        let _span = StageTimer::enter(Stage::Rerank);
        self.check_dim(hv.dim())?;
        for &c in classes {
            if c >= self.taxonomy.num_classes() {
                return Err(FactorHdError::ClassOutOfBounds {
                    index: c,
                    len: self.taxonomy.num_classes(),
                });
            }
        }
        let mut stats = FactorizeStats::default();
        self.decode_classes(hv, classes, &mut stats)
    }

    /// Per-class decode: top-`refine_width` candidates at each level,
    /// re-scored by cumulative similarity down the hierarchy (a width-1
    /// beam is the paper's plain greedy arg-max descent; wider beams
    /// combine evidence across levels).
    ///
    /// When every component of `hv` lies in `{-1, 0, 1}` (any
    /// single-object scene), the query is routed through its lossless
    /// ternary view so every codebook scan runs on the packed shard
    /// tables ([`hdc::CodebookScan`]) — bit-identical results, an order
    /// of magnitude fewer scalar operations. Scan hits land in buffers
    /// reused across classes and levels
    /// ([`hdc::CodebookScan::scan_top_k_into`]), so a warm decode's scans
    /// allocate nothing.
    fn decode_classes(
        &self,
        hv: &AccumHv,
        classes: &[usize],
        stats: &mut FactorizeStats,
    ) -> Result<Vec<ClassDecode>, FactorHdError> {
        match hv.to_ternary_lossless() {
            Some(ternary) => self.decode_classes_in(&ternary, classes, stats),
            None => self.decode_classes_in(hv, classes, stats),
        }
    }

    fn decode_classes_in<Q>(
        &self,
        hv: &Q,
        classes: &[usize],
        stats: &mut FactorizeStats,
    ) -> Result<Vec<ClassDecode>, FactorHdError>
    where
        Q: CodebookScan + Bind<BipolarHv, Output = Q>,
    {
        let width = self.config.refine_width.max(1);
        let mut result = Vec::with_capacity(classes.len());
        let mut top_hits: Vec<hdc::SearchHit> = Vec::new();
        for &class in classes {
            let unbound = hv.bind(&self.unbind_keys[class]);
            stats.unbind_ops += 1;

            let top = self.taxonomy.codebook(class, &[])?;
            unbound.scan_top_k_into(&top, width, &mut top_hits);
            stats.similarity_checks += top.len() as u64;
            result.push(self.decode_class_from_hits(&unbound, class, &top_hits, stats)?);
        }
        Ok(result)
    }

    /// The per-class decode tail shared by the one-at-a-time and grouped
    /// paths: NULL detection against the level-1 winners, then the beam
    /// descent through the subclass levels. `top_hits` are the query's
    /// level-1 scan results for `class` (already counted in `stats`).
    fn decode_class_from_hits<Q>(
        &self,
        unbound: &Q,
        class: usize,
        top_hits: &[hdc::SearchHit],
        stats: &mut FactorizeStats,
    ) -> Result<ClassDecode, FactorHdError>
    where
        Q: CodebookScan,
    {
        let width = self.config.refine_width.max(1);
        let best_sim = top_hits.first().expect("non-empty codebook").sim;

        if self.config.detect_null {
            let null_sim = unbound.sim_to(self.taxonomy.null_hv());
            stats.similarity_checks += 1;
            if null_sim > best_sim {
                return Ok(ClassDecode {
                    class,
                    path: None,
                    sim: null_sim,
                });
            }
        }

        // Beam over (path, cumulative sim, levels visited). The subclass
        // scans reuse one hits buffer across levels and beam nodes
        // (zero-allocation scans once the thread's scratch is warm).
        let mut beam: Vec<(ItemPath, f64)> = top_hits
            .iter()
            .map(|hit| (ItemPath::top(hit.index as u16), hit.sim))
            .collect();
        let mut child_hits: Vec<hdc::SearchHit> = Vec::new();
        for _level in 1..self.depth_limit(class) {
            let mut next: Vec<(ItemPath, f64)> = Vec::new();
            for (path, cum) in &beam {
                let children = self.taxonomy.codebook(class, path.indices())?;
                unbound.scan_top_k_into(&children, width, &mut child_hits);
                stats.similarity_checks += children.len() as u64;
                for hit in &child_hits {
                    next.push((path.child(hit.index as u16), cum + hit.sim));
                }
            }
            next.sort_by(|a, b| b.1.total_cmp(&a.1));
            next.truncate(width);
            beam = next;
        }
        let (path, cum) = beam.into_iter().next().expect("non-empty codebooks");
        let depth = path.depth() as f64;
        Ok(ClassDecode {
            class,
            sim: cum / depth,
            path: Some(path),
        })
    }

    // ------------------------------------------------------------------
    // Multi-object factorization (Rep 3)
    // ------------------------------------------------------------------

    /// Factorizes a scene with an unknown number of objects: threshold
    /// candidate selection, combination testing, level descent, and the
    /// reconstruct-and-exclude loop of Algorithm 1.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::DimensionMismatch`] on a wrong-size query. An empty
    /// result (no object cleared `TH`) is returned as a [`DecodedScene`]
    /// with no objects, not as an error.
    pub fn factorize_multi(&self, hv: &AccumHv) -> Result<DecodedScene, FactorHdError> {
        let _span = StageTimer::enter(Stage::Rerank);
        self.check_dim(hv.dim())?;
        let th = self.resolved_threshold();
        let mut stats = FactorizeStats::default();
        let mut residual = hv.clone();
        let mut objects = Vec::new();

        while objects.len() < self.config.max_objects {
            match self.find_one_object(&residual, th, &mut stats)? {
                None => break,
                Some(decoded) => {
                    let reconstruction = self.reconstruct(&decoded.object)?;
                    residual.sub_ternary(&reconstruction);
                    objects.push(decoded);
                    stats.objects_found += 1;
                }
            }
        }

        Ok(DecodedScene {
            objects,
            stats,
            residual_norm: residual.norm(),
        })
    }

    /// One iteration of the Algorithm-1 loop: find the strongest object in
    /// `residual`, or `None` when nothing clears `th`.
    ///
    /// Routed through the lossless ternary view when the residual's
    /// components fit `{-1, 0, 1}` (single-object scenes and late
    /// reconstruct-and-exclude iterations) — see
    /// [`AccumHv::to_ternary_lossless`].
    fn find_one_object(
        &self,
        residual: &AccumHv,
        th: f64,
        stats: &mut FactorizeStats,
    ) -> Result<Option<DecodedObject>, FactorHdError> {
        match residual.to_ternary_lossless() {
            Some(ternary) => self.find_one_object_in(&ternary, residual, th, stats),
            None => self.find_one_object_in(residual, residual, th, stats),
        }
    }

    fn find_one_object_in<Q>(
        &self,
        query: &Q,
        residual: &AccumHv,
        th: f64,
        stats: &mut FactorizeStats,
    ) -> Result<Option<DecodedObject>, FactorHdError>
    where
        Q: CodebookScan + Bind<BipolarHv, Output = Q>,
    {
        let f = self.taxonomy.num_classes();

        // Per-class label elimination (computed once per loop iteration).
        let unbound: Vec<Q> = (0..f)
            .map(|i| {
                stats.unbind_ops += 1;
                query.bind(&self.unbind_keys[i])
            })
            .collect();

        // Level-1 candidate selection per class. Scan hits land in one
        // buffer reused across classes, through the explicitly sequential
        // `_into` route — a planned batch may already be running this
        // whole decode inside a parallel region, and the scan must not
        // fork again under it.
        let mut per_class: Vec<Vec<Candidate>> = Vec::with_capacity(f);
        let mut hits: Vec<hdc::SearchHit> = Vec::new();
        for (class, unbound_class) in unbound.iter().enumerate() {
            let top = self.taxonomy.codebook(class, &[])?;
            unbound_class.scan_above_threshold_into(&top, th, &mut hits);
            stats.similarity_checks += top.len() as u64;
            let mut cands: Vec<Candidate> = hits
                .iter()
                .map(|hit| Candidate {
                    path: Some(ItemPath::top(hit.index as u16)),
                    item: top.item(hit.index).clone(),
                    sim: hit.sim,
                    exhausted: self.depth_limit(class) <= 1,
                })
                .collect();
            if self.config.detect_null {
                let null_sim = unbound_class.sim_to(self.taxonomy.null_hv());
                stats.similarity_checks += 1;
                if null_sim > th {
                    cands.push(Candidate {
                        path: None,
                        item: self.taxonomy.null_hv().clone(),
                        sim: null_sim,
                        exhausted: true,
                    });
                }
            }
            if cands.is_empty() {
                return Ok(None);
            }
            cands.sort_by(|a, b| b.sim.total_cmp(&a.sim));
            per_class.push(cands);
        }

        // Level-1 combination tests.
        let mut beam = self.test_combinations(query, &per_class, th, stats);
        if beam.is_empty() {
            return Ok(None);
        }
        beam.truncate(self.config.beam_width);

        // Level descent: refine every non-exhausted class of every beam
        // entry, re-testing combinations at each level.
        let max_depth = (0..f).map(|c| self.depth_limit(c)).max().unwrap_or(1);
        for level in 1..max_depth {
            let mut next_beam: Vec<Combo> = Vec::new();
            for combo in &beam {
                let refined = self.descend_combo(query, &unbound, combo, level, th, stats)?;
                next_beam.extend(refined);
            }
            if next_beam.is_empty() {
                return Ok(None);
            }
            next_beam.sort_by(|a, b| b.sim.total_cmp(&a.sim));
            next_beam.truncate(self.config.beam_width);
            beam = next_beam;
        }

        // Final acceptance: the candidate's full clause reconstruction must
        // explain one object's worth of the residual. A true object scores
        // ~ρ (its density product); any single-item miss scores ≤ ρ/2.
        for combo in beam {
            let assignments: Vec<Option<ItemPath>> =
                combo.slots.iter().map(|c| c.path.clone()).collect();
            let object = ObjectSpec::new(assignments);
            let reconstruction = self.reconstruct(&object)?;
            let rho = reconstruction.density().max(f64::MIN_POSITIVE);
            let accept_sim = residual.sim_ternary(&reconstruction) / rho;
            stats.combination_tests += 1;
            if accept_sim >= self.config.accept_threshold {
                return Ok(Some(DecodedObject {
                    object,
                    confidence: accept_sim,
                }));
            }
        }
        Ok(None)
    }

    /// Expands one beam entry one level deeper: candidate children per
    /// refinable class (similarity > `th` against that class's unbound
    /// vector), then combination re-testing.
    fn descend_combo<Q: CodebookScan>(
        &self,
        residual: &Q,
        unbound: &[Q],
        combo: &Combo,
        level: usize,
        th: f64,
        stats: &mut FactorizeStats,
    ) -> Result<Vec<Combo>, FactorHdError> {
        let mut per_class: Vec<Vec<Candidate>> = Vec::with_capacity(combo.slots.len());
        // One hits buffer reused across classes, scanned through the
        // explicitly sequential `_into` route (see `find_one_object_in`).
        let mut hits: Vec<hdc::SearchHit> = Vec::new();
        for (class, slot) in combo.slots.iter().enumerate() {
            if slot.exhausted || slot.path.is_none() {
                per_class.push(vec![slot.clone()]);
                continue;
            }
            let path = slot.path.as_ref().expect("checked above");
            if path.depth() != level || level >= self.depth_limit(class) {
                // Already at its final level for this class.
                let mut done = slot.clone();
                done.exhausted = true;
                per_class.push(vec![done]);
                continue;
            }
            let children = self.taxonomy.codebook(class, path.indices())?;
            unbound[class].scan_above_threshold_into(&children, th, &mut hits);
            stats.similarity_checks += children.len() as u64;
            if hits.is_empty() {
                return Ok(Vec::new());
            }
            let cands = hits
                .iter()
                .map(|hit| {
                    let child_path = path.child(hit.index as u16);
                    let exhausted = child_path.depth() >= self.depth_limit(class);
                    Candidate {
                        path: Some(child_path),
                        item: children.item(hit.index).clone(),
                        sim: hit.sim,
                        exhausted,
                    }
                })
                .collect();
            per_class.push(cands);
        }
        Ok(self.test_combinations(residual, &per_class, th, stats))
    }

    /// Binds one candidate per class and keeps combinations whose product
    /// similarity to `residual` clears `th`, sorted by similarity.
    fn test_combinations<Q: Similarity>(
        &self,
        residual: &Q,
        per_class: &[Vec<Candidate>],
        th: f64,
        stats: &mut FactorizeStats,
    ) -> Vec<Combo> {
        let total: usize = per_class.iter().map(|c| c.len().max(1)).product();
        if total > self.config.max_combinations {
            stats.truncated_combinations = true;
        }

        let mut accepted = Vec::new();
        let mut indices = vec![0usize; per_class.len()];
        let mut tested = 0usize;
        'outer: loop {
            // Build the combination product for the current index vector.
            let mut product = per_class[0][indices[0]].item.clone();
            for (class, &idx) in indices.iter().enumerate().skip(1) {
                product.bind_assign(&per_class[class][idx].item);
            }
            let sim = residual.sim_to(&product);
            stats.combination_tests += 1;
            tested += 1;
            if sim > th {
                let slots = indices
                    .iter()
                    .enumerate()
                    .map(|(class, &idx)| per_class[class][idx].clone())
                    .collect();
                accepted.push(Combo { slots, sim });
            }
            if tested >= self.config.max_combinations {
                break;
            }
            // Advance the mixed-radix index vector.
            for class in (0..indices.len()).rev() {
                indices[class] += 1;
                if indices[class] < per_class[class].len() {
                    continue 'outer;
                }
                indices[class] = 0;
                if class == 0 {
                    break 'outer;
                }
            }
        }
        accepted.sort_by(|a, b| b.sim.total_cmp(&a.sim));
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;
    use hdc::rng_from_seed;

    fn flat_taxonomy(f: usize, m: usize, dim: usize) -> Taxonomy {
        TaxonomyBuilder::new(dim)
            .seed(99)
            .uniform_classes(f, &[m])
            .build()
            .expect("valid taxonomy")
    }

    fn deep_taxonomy(dim: usize) -> Taxonomy {
        TaxonomyBuilder::new(dim)
            .seed(101)
            .class("a", &[16, 8])
            .class("b", &[16, 8])
            .class("c", &[16])
            .build()
            .expect("valid taxonomy")
    }

    #[test]
    fn rep1_recovers_single_object() {
        let t = flat_taxonomy(3, 32, 1024);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(1);
        for _ in 0..20 {
            let obj = t.sample_object(&mut rng);
            let hv = enc.encode_scene(&Scene::single(obj.clone())).unwrap();
            let decoded = fac.factorize_single(&hv).unwrap();
            assert_eq!(decoded.object(), &obj);
            assert!(decoded.confidence() > 0.05);
        }
    }

    #[test]
    fn rep2_recovers_multi_level_object() {
        let t = deep_taxonomy(2048);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(2);
        for _ in 0..20 {
            let obj = t.sample_object(&mut rng);
            let hv = enc.encode_scene(&Scene::single(obj.clone())).unwrap();
            let decoded = fac.factorize_single(&hv).unwrap();
            assert_eq!(decoded.object(), &obj);
        }
    }

    #[test]
    fn single_detects_null_class() {
        let t = deep_taxonomy(2048);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let obj = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![3, 4])),
            None,
            Some(ItemPath::top(9)),
        ]);
        let hv = enc.encode_scene(&Scene::single(obj.clone())).unwrap();
        let decoded = fac.factorize_single(&hv).unwrap();
        assert_eq!(decoded.object(), &obj);
    }

    #[test]
    fn partial_factorization_touches_only_selected_classes() {
        let t = deep_taxonomy(2048);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let obj = ObjectSpec::present(vec![
            ItemPath::new(vec![5, 2]),
            ItemPath::new(vec![1, 7]),
            ItemPath::top(11),
        ]);
        let hv = enc.encode_scene(&Scene::single(obj.clone())).unwrap();
        let decodes = fac.factorize_classes(&hv, &[2]).unwrap();
        assert_eq!(decodes.len(), 1);
        assert_eq!(decodes[0].class, 2);
        assert_eq!(decodes[0].path, Some(ItemPath::top(11)));
        // Partial factorization must cost far fewer similarity checks than
        // the full decode.
        let (_, full_stats) = fac.factorize_single_traced(&hv).unwrap();
        let partial = {
            let mut stats = FactorizeStats::default();
            fac.decode_classes(&hv, &[2], &mut stats).unwrap();
            stats
        };
        assert!(partial.similarity_checks < full_stats.similarity_checks);
    }

    #[test]
    fn factorize_classes_rejects_bad_class() {
        let t = flat_taxonomy(2, 4, 256);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let hv = AccumHv::zeros(256);
        assert!(matches!(
            fac.factorize_classes(&hv, &[5]),
            Err(FactorHdError::ClassOutOfBounds { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let t = flat_taxonomy(2, 4, 256);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let hv = AccumHv::zeros(128);
        assert!(matches!(
            fac.factorize_single(&hv),
            Err(FactorHdError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            fac.factorize_multi(&hv),
            Err(FactorHdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rep3_recovers_two_objects() {
        let t = flat_taxonomy(3, 16, 4096);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(
            &t,
            FactorizeConfig {
                threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                ..FactorizeConfig::default()
            },
        );
        let mut rng = rng_from_seed(3);
        let mut successes = 0;
        for _ in 0..10 {
            let scene = t.sample_scene(2, true, &mut rng);
            let hv = enc.encode_scene(&scene).unwrap();
            let decoded = fac.factorize_multi(&hv).unwrap();
            if decoded.to_scene().same_multiset(&scene) {
                successes += 1;
            }
        }
        assert!(successes >= 9, "only {successes}/10 scenes recovered");
    }

    #[test]
    fn rep3_handles_multi_level_scene() {
        let t = deep_taxonomy(8192);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(
            &t,
            FactorizeConfig {
                threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                ..FactorizeConfig::default()
            },
        );
        let mut rng = rng_from_seed(4);
        let mut successes = 0;
        for _ in 0..10 {
            let scene = t.sample_scene(2, true, &mut rng);
            let hv = enc.encode_scene(&scene).unwrap();
            let decoded = fac.factorize_multi(&hv).unwrap();
            if decoded.to_scene().same_multiset(&scene) {
                successes += 1;
            }
        }
        assert!(successes >= 8, "only {successes}/10 scenes recovered");
    }

    #[test]
    fn rep3_solves_the_problem_of_2() {
        // Two identical objects in one scene must be recovered twice.
        let t = flat_taxonomy(3, 16, 4096);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(
            &t,
            FactorizeConfig {
                threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                ..FactorizeConfig::default()
            },
        );
        let mut rng = rng_from_seed(5);
        let obj = t.sample_object(&mut rng);
        let scene = Scene::new(vec![obj.clone(), obj.clone()]);
        let hv = enc.encode_scene(&scene).unwrap();
        let decoded = fac.factorize_multi(&hv).unwrap();
        assert_eq!(decoded.objects.len(), 2, "duplicate object lost");
        assert_eq!(decoded.objects[0].object(), &obj);
        assert_eq!(decoded.objects[1].object(), &obj);
        assert!(
            decoded.residual_norm < 1.0,
            "residual {}",
            decoded.residual_norm
        );
    }

    #[test]
    fn rep3_residual_shrinks_to_zero_on_success() {
        let t = flat_taxonomy(3, 8, 4096);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(6);
        let scene = t.sample_scene(2, true, &mut rng);
        let hv = enc.encode_scene(&scene).unwrap();
        let decoded = fac.factorize_multi(&hv).unwrap();
        assert!(decoded.to_scene().same_multiset(&scene));
        assert_eq!(decoded.residual_norm, 0.0);
    }

    #[test]
    fn rep3_empty_scene_vector_finds_nothing() {
        let t = flat_taxonomy(3, 8, 2048);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let decoded = fac.factorize_multi(&AccumHv::zeros(2048)).unwrap();
        assert!(decoded.objects.is_empty());
        assert_eq!(decoded.stats.objects_found, 0);
    }

    #[test]
    fn rep3_respects_max_objects() {
        let t = flat_taxonomy(3, 8, 4096);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(
            &t,
            FactorizeConfig {
                max_objects: 1,
                ..FactorizeConfig::default()
            },
        );
        let mut rng = rng_from_seed(7);
        let scene = t.sample_scene(3, true, &mut rng);
        let hv = enc.encode_scene(&scene).unwrap();
        let decoded = fac.factorize_multi(&hv).unwrap();
        assert_eq!(decoded.objects.len(), 1);
    }

    #[test]
    fn rep3_detects_null_classes() {
        let t = flat_taxonomy(3, 16, 8192);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(8);
        let with_null = t.sample_object(&mut rng).with_assignment(1, None);
        let other = t.sample_object(&mut rng);
        let scene = Scene::new(vec![with_null.clone(), other.clone()]);
        let hv = enc.encode_scene(&scene).unwrap();
        let decoded = fac.factorize_multi(&hv).unwrap();
        assert!(
            decoded.to_scene().same_multiset(&scene),
            "got {:?}",
            decoded.to_scene()
        );
    }

    #[test]
    fn stats_count_operations() {
        let t = flat_taxonomy(3, 32, 1024);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(9);
        let obj = t.sample_object(&mut rng);
        let hv = enc.encode_scene(&Scene::single(obj)).unwrap();
        let (_, stats) = fac.factorize_single_traced(&hv).unwrap();
        // 3 classes × (32 items + 1 null check).
        assert_eq!(stats.similarity_checks, 3 * 33);
        assert_eq!(stats.unbind_ops, 3);
    }

    #[test]
    fn rep1_similarity_cost_is_linear_in_m_not_m_pow_f() {
        let t = flat_taxonomy(3, 64, 1024);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(10);
        let obj = t.sample_object(&mut rng);
        let hv = enc.encode_scene(&Scene::single(obj)).unwrap();
        let (_, stats) = fac.factorize_single_traced(&hv).unwrap();
        // F·(M + 1) ≪ M^F: the core efficiency claim.
        assert!(stats.similarity_checks < 64 * 64);
    }

    #[test]
    fn with_parts_validates_keys() {
        let t = flat_taxonomy(3, 8, 512);
        let keys = Arc::new(build_unbind_keys(&t));
        assert!(Factorizer::with_parts(&t, FactorizeConfig::default(), keys, None).is_ok());
        let short = Arc::new(vec![BipolarHv::ones(512)]);
        assert!(matches!(
            Factorizer::with_parts(&t, FactorizeConfig::default(), short, None),
            Err(FactorHdError::InvalidConfig(_))
        ));
        let wrong_dim = Arc::new(vec![BipolarHv::ones(64); 3]);
        assert!(matches!(
            Factorizer::with_parts(&t, FactorizeConfig::default(), wrong_dim, None),
            Err(FactorHdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn with_parts_matches_new() {
        let t = deep_taxonomy(2048);
        let enc = Encoder::new(&t);
        let plain = Factorizer::new(&t, FactorizeConfig::default());
        let keys = Arc::new(build_unbind_keys(&t));
        let parts =
            Factorizer::with_parts(&t, FactorizeConfig::default(), keys, None).expect("valid");
        let mut rng = rng_from_seed(42);
        for _ in 0..5 {
            let scene = t.sample_scene(2, true, &mut rng);
            let hv = enc.encode_scene(&scene).unwrap();
            assert_eq!(
                plain.factorize_multi(&hv).unwrap(),
                parts.factorize_multi(&hv).unwrap()
            );
        }
    }

    /// A counting pass-through cache: outputs must stay bit-identical and
    /// the cache must actually be consulted.
    struct CountingCache {
        calls: std::sync::atomic::AtomicUsize,
    }

    impl ReconstructionCache for CountingCache {
        fn get_or_encode(
            &self,
            encoder: &Encoder<'_>,
            object: &ObjectSpec,
        ) -> Result<Arc<TernaryHv>, FactorHdError> {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            encoder.encode_object(object).map(Arc::new)
        }
    }

    #[test]
    fn injected_reconstruction_cache_is_used_and_transparent() {
        let t = flat_taxonomy(3, 8, 4096);
        let enc = Encoder::new(&t);
        let cache = Arc::new(CountingCache {
            calls: std::sync::atomic::AtomicUsize::new(0),
        });
        let cached = Factorizer::with_parts(
            &t,
            FactorizeConfig::default(),
            Arc::new(build_unbind_keys(&t)),
            Some(cache.clone()),
        )
        .expect("valid");
        let plain = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(43);
        let scene = t.sample_scene(2, true, &mut rng);
        let hv = enc.encode_scene(&scene).unwrap();
        assert_eq!(
            plain.factorize_multi(&hv).unwrap(),
            cached.factorize_multi(&hv).unwrap()
        );
        assert!(cache.calls.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }

    #[test]
    fn ternary_fast_path_is_bit_identical() {
        // Single-object scenes take the lossless ternary route; forcing the
        // accumulator route by adding a zero vector (values still equal)
        // must give identical decodes, sims, and stats.
        let t = deep_taxonomy(2048);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(44);
        for _ in 0..10 {
            let obj = t.sample_object(&mut rng);
            let hv = enc.encode_scene(&Scene::single(obj)).unwrap();
            assert!(hv.to_ternary_lossless().is_some(), "fast path available");
            let mut doubled = hv.clone();
            doubled.scale(2); // components in {-2, 0, 2}: accum route
            let (fast, fast_stats) = fac.factorize_single_traced(&hv).unwrap();
            let (slow, slow_stats) = fac.factorize_single_traced(&doubled).unwrap();
            // Doubling scales every dot by 2, so sims scale but the argmax
            // ordering — and therefore the decode — is preserved.
            assert_eq!(fast.object(), slow.object());
            assert_eq!(fast_stats, slow_stats);
        }
    }

    #[test]
    fn factorize_single_many_is_bit_identical_to_loop() {
        let t = deep_taxonomy(2048);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(70);
        let hvs: Vec<AccumHv> = (0..9)
            .map(|_| {
                let obj = t.sample_object(&mut rng);
                enc.encode_scene(&Scene::single(obj)).unwrap()
            })
            .collect();
        let refs: Vec<&AccumHv> = hvs.iter().collect();
        let grouped: Vec<DecodedObject> = fac
            .factorize_single_many(&refs)
            .into_iter()
            .map(|r| r.expect("decodes"))
            .collect();
        let singles: Vec<DecodedObject> = hvs
            .iter()
            .map(|hv| fac.factorize_single(hv).expect("decodes"))
            .collect();
        assert_eq!(grouped, singles);
        assert!(fac.factorize_single_many(&[]).is_empty());
    }

    #[test]
    fn factorize_single_many_falls_back_per_query() {
        // A non-lossless accumulator (components outside {-1, 0, 1}) and a
        // wrong-dimension query both take the per-query path: results and
        // errors land on the right inputs.
        let t = flat_taxonomy(3, 8, 1024);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let mut rng = rng_from_seed(71);
        let obj = t.sample_object(&mut rng);
        let hv = enc.encode_scene(&Scene::single(obj)).unwrap();
        let mut doubled = hv.clone();
        doubled.scale(2);
        let results = fac.factorize_single_many(&[&hv, &doubled]);
        assert_eq!(
            results[0].as_ref().expect("decodes").object(),
            results[1].as_ref().expect("decodes").object()
        );

        let short = AccumHv::zeros(64);
        let mixed = fac.factorize_single_many(&[&hv, &short]);
        assert!(mixed[0].is_ok());
        assert!(matches!(
            mixed[1],
            Err(FactorHdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn evaluate_membership_matches_scene_query() {
        let t = deep_taxonomy(2048);
        let enc = Encoder::new(&t);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let obj = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![3, 1])),
            None,
            Some(ItemPath::top(5)),
        ]);
        let hv = enc.encode_scene(&Scene::single(obj.clone())).unwrap();
        let items = vec![(0usize, ItemPath::new(vec![3, 1]))];
        let absent = vec![1usize];
        let via_factorizer = fac.evaluate_membership(&hv, &items, &absent).unwrap();
        let mut query = crate::SceneQuery::new(&t);
        for (class, path) in &items {
            query = query.with_item(*class, path.clone()).unwrap();
        }
        for &class in &absent {
            query = query.with_absent(class).unwrap();
        }
        assert_eq!(via_factorizer, query.evaluate(&hv).unwrap());
        assert!(via_factorizer.present);
        // Bad class indices surface as typed errors.
        assert!(fac.evaluate_membership(&hv, &[], &[9]).is_err());
    }

    #[test]
    fn resolved_threshold_is_positive_and_below_signal() {
        let t = flat_taxonomy(4, 10, 2000);
        let fac = Factorizer::new(&t, FactorizeConfig::default());
        let th = fac.resolved_threshold();
        let signal = crate::threshold::expected_signal(&t.clause_sizes());
        assert!(th > 0.0 && th < signal, "th {th} vs signal {signal}");
    }
}
