//! Objects and scenes over a class–subclass taxonomy.
//!
//! An [`ObjectSpec`] assigns, for every class of the taxonomy, either an
//! [`ItemPath`] down that class's subclass hierarchy or `None` (the class is
//! not associated with the object — FactorHD still reserves its label and
//! bundles it with the global NULL vector, §III-A). A [`Scene`] is the
//! multiset of objects bundled into one target hypervector.

use std::fmt;

/// A path down one class's subclass hierarchy.
///
/// `path[0]` selects the level-1 subclass item, `path[1]` the sub-subclass
/// under it, and so on. Paths are never empty: a class with no item is
/// represented by `None` in the [`ObjectSpec`], not by an empty path.
///
/// ```
/// use factorhd_core::ItemPath;
/// let p = ItemPath::new(vec![3, 1]);
/// assert_eq!(p.depth(), 2);
/// assert_eq!(p.parent(), Some(ItemPath::new(vec![3])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemPath(Vec<u16>);

impl ItemPath {
    /// Creates a path from level indices (level 1 first).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn new(indices: Vec<u16>) -> Self {
        assert!(
            !indices.is_empty(),
            "item paths must have at least one level"
        );
        ItemPath(indices)
    }

    /// A depth-1 path selecting `index` at the top subclass level.
    pub fn top(index: u16) -> Self {
        ItemPath(vec![index])
    }

    /// Number of levels in the path.
    #[inline]
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The level indices, level 1 first.
    #[inline]
    pub fn indices(&self) -> &[u16] {
        &self.0
    }

    /// The prefix of this path up to `depth` levels (`None` if `depth == 0`).
    pub fn prefix(&self, depth: usize) -> Option<ItemPath> {
        if depth == 0 || depth > self.0.len() {
            None
        } else {
            Some(ItemPath(self.0[..depth].to_vec()))
        }
    }

    /// The parent path (one level shallower), or `None` at the top level.
    pub fn parent(&self) -> Option<ItemPath> {
        self.prefix(self.0.len().saturating_sub(1))
    }

    /// Extends the path one level deeper.
    pub fn child(&self, index: u16) -> ItemPath {
        let mut v = self.0.clone();
        v.push(index);
        ItemPath(v)
    }

    /// The index selected at the final level.
    #[inline]
    pub fn leaf(&self) -> u16 {
        *self.0.last().expect("paths are non-empty")
    }
}

impl fmt::Display for ItemPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|i| i.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

impl From<u16> for ItemPath {
    fn from(value: u16) -> Self {
        ItemPath::top(value)
    }
}

/// One object's class assignments: for each taxonomy class, an optional
/// subclass path.
///
/// ```
/// use factorhd_core::{ItemPath, ObjectSpec};
/// // Class 0 → item 2, class 1 absent, class 2 → item 0 then child 4.
/// let obj = ObjectSpec::new(vec![
///     Some(ItemPath::top(2)),
///     None,
///     Some(ItemPath::new(vec![0, 4])),
/// ]);
/// assert_eq!(obj.num_classes(), 3);
/// assert!(obj.assignment(1).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectSpec {
    assignments: Vec<Option<ItemPath>>,
}

impl ObjectSpec {
    /// Creates an object from per-class assignments.
    pub fn new(assignments: Vec<Option<ItemPath>>) -> Self {
        ObjectSpec { assignments }
    }

    /// An object whose every class is present, with the given paths.
    pub fn present(paths: Vec<ItemPath>) -> Self {
        ObjectSpec {
            assignments: paths.into_iter().map(Some).collect(),
        }
    }

    /// An object with every class absent (all NULL clauses).
    pub fn empty(num_classes: usize) -> Self {
        ObjectSpec {
            assignments: vec![None; num_classes],
        }
    }

    /// Number of class assignments.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.assignments.len()
    }

    /// The assignment for class `class` (`None` if absent).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of bounds.
    #[inline]
    pub fn assignment(&self, class: usize) -> Option<&ItemPath> {
        self.assignments[class].as_ref()
    }

    /// All assignments, indexed by class.
    #[inline]
    pub fn assignments(&self) -> &[Option<ItemPath>] {
        &self.assignments
    }

    /// Replaces the assignment of one class, returning the new object.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of bounds.
    pub fn with_assignment(mut self, class: usize, path: Option<ItemPath>) -> Self {
        self.assignments[class] = path;
        self
    }

    /// Truncates every path to at most `depth` levels (used when scoring
    /// partial-depth factorizations).
    pub fn truncated(&self, depth: usize) -> ObjectSpec {
        ObjectSpec {
            assignments: self
                .assignments
                .iter()
                .map(|a| a.as_ref().and_then(|p| p.prefix(depth.min(p.depth()))))
                .collect(),
        }
    }
}

impl fmt::Display for ObjectSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .assignments
            .iter()
            .enumerate()
            .map(|(i, a)| match a {
                Some(p) => format!("c{i}={p}"),
                None => format!("c{i}=∅"),
            })
            .collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

/// A multiset of objects bundled into one scene hypervector.
///
/// Scenes may contain *identical* objects; FactorHD's integer bundling keeps
/// their multiplicity ("the problem of 2", §I), and the factorization loop
/// recovers each copy by reconstruct-and-exclude.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scene {
    objects: Vec<ObjectSpec>,
}

impl Scene {
    /// Creates a scene from a list of objects (duplicates allowed).
    pub fn new(objects: Vec<ObjectSpec>) -> Self {
        Scene { objects }
    }

    /// A scene holding a single object.
    pub fn single(object: ObjectSpec) -> Self {
        Scene {
            objects: vec![object],
        }
    }

    /// Number of objects (with multiplicity).
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the scene has no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The objects, in insertion order.
    #[inline]
    pub fn objects(&self) -> &[ObjectSpec] {
        &self.objects
    }

    /// Adds an object to the scene.
    pub fn push(&mut self, object: ObjectSpec) {
        self.objects.push(object);
    }

    /// Compares two scenes as multisets (order-insensitive, multiplicity-
    /// sensitive).
    pub fn same_multiset(&self, other: &Scene) -> bool {
        let mut a = self.objects.clone();
        let mut b = other.objects.clone();
        let key = |o: &ObjectSpec| format!("{o}");
        a.sort_by_key(&key);
        b.sort_by_key(&key);
        a == b
    }
}

impl FromIterator<ObjectSpec> for Scene {
    fn from_iter<T: IntoIterator<Item = ObjectSpec>>(iter: T) -> Self {
        Scene {
            objects: iter.into_iter().collect(),
        }
    }
}

impl Extend<ObjectSpec> for Scene {
    fn extend<T: IntoIterator<Item = ObjectSpec>>(&mut self, iter: T) {
        self.objects.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_prefix_and_parent() {
        let p = ItemPath::new(vec![5, 2, 7]);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.leaf(), 7);
        assert_eq!(p.prefix(2), Some(ItemPath::new(vec![5, 2])));
        assert_eq!(p.prefix(0), None);
        assert_eq!(p.prefix(4), None);
        assert_eq!(p.parent(), Some(ItemPath::new(vec![5, 2])));
        assert_eq!(ItemPath::top(5).parent(), None);
    }

    #[test]
    fn path_child_extends() {
        let p = ItemPath::top(1).child(2).child(3);
        assert_eq!(p.indices(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_path_panics() {
        let _ = ItemPath::new(vec![]);
    }

    #[test]
    fn path_display() {
        assert_eq!(ItemPath::new(vec![3, 1]).to_string(), "3.1");
    }

    #[test]
    fn object_accessors() {
        let obj = ObjectSpec::new(vec![Some(ItemPath::top(1)), None]);
        assert_eq!(obj.num_classes(), 2);
        assert_eq!(obj.assignment(0), Some(&ItemPath::top(1)));
        assert!(obj.assignment(1).is_none());
    }

    #[test]
    fn object_with_assignment_replaces() {
        let obj = ObjectSpec::empty(2).with_assignment(1, Some(ItemPath::top(4)));
        assert!(obj.assignment(0).is_none());
        assert_eq!(obj.assignment(1), Some(&ItemPath::top(4)));
    }

    #[test]
    fn object_truncated_cuts_paths() {
        let obj = ObjectSpec::present(vec![ItemPath::new(vec![1, 2, 3]), ItemPath::top(9)]);
        let t = obj.truncated(2);
        assert_eq!(t.assignment(0), Some(&ItemPath::new(vec![1, 2])));
        assert_eq!(t.assignment(1), Some(&ItemPath::top(9)));
    }

    #[test]
    fn object_display_marks_absent() {
        let obj = ObjectSpec::new(vec![Some(ItemPath::top(2)), None]);
        let s = obj.to_string();
        assert!(s.contains("c0=2"));
        assert!(s.contains("c1=∅"));
    }

    #[test]
    fn scene_multiset_comparison() {
        let a = ObjectSpec::present(vec![ItemPath::top(1)]);
        let b = ObjectSpec::present(vec![ItemPath::top(2)]);
        let s1 = Scene::new(vec![a.clone(), b.clone()]);
        let s2 = Scene::new(vec![b.clone(), a.clone()]);
        assert!(s1.same_multiset(&s2));
        // Multiplicity matters.
        let s3 = Scene::new(vec![a.clone(), a.clone()]);
        let s4 = Scene::new(vec![a.clone()]);
        assert!(!s3.same_multiset(&s4));
    }

    #[test]
    fn scene_collects_from_iterator() {
        let objs = vec![ObjectSpec::empty(1), ObjectSpec::empty(1)];
        let scene: Scene = objs.into_iter().collect();
        assert_eq!(scene.len(), 2);
        assert!(!scene.is_empty());
    }
}
