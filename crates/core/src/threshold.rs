//! Threshold-similarity (`TH`) models for multi-object factorization.
//!
//! Rep-3 factorization selects every candidate item whose similarity to the
//! label-unbound scene exceeds `TH`, and accepts item combinations whose
//! bound product clears the same `TH` (§III-B). The paper studies the
//! optimal `TH*` empirically (Fig. 3) and offers the linear fit of Eq. 2.
//! This module provides:
//!
//! * [`clause_member_correlation`] / [`clause_density`] — exact
//!   combinatorics of clipped clause bundles, from which
//! * [`expected_signal`] derives the analytic expected similarity of a true
//!   item/combination, giving the [`ThresholdPolicy::Analytic`] default;
//! * [`paper_eq2`] — the paper's Eq. 2 verbatim (see the scale caveat in
//!   DESIGN.md);
//! * [`LinearThresholdModel`] — a least-squares fit of `TH*` against
//!   `(N, F, D, log M)`, the functional form the paper claims, regenerated
//!   by the Fig. 3 experiment.

use crate::{FactorHdError, Taxonomy};

/// Exact correlation `E[x · clip(x + S_{k-1})]` between one member of a
/// `k`-wide bipolar bundle and the clipped bundle.
///
/// Equals `C(k-1, ⌊(k-1)/2⌋) / 2^(k-1)`: `0.5` for `k ∈ {2, 3}`, `0.375`
/// for `k ∈ {4, 5}`, decreasing slowly — which is why FactorHD clauses keep
/// a usable signal even with several subclass levels bundled in.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn clause_member_correlation(k: usize) -> f64 {
    assert!(k > 0, "clause must have at least one member");
    if k == 1 {
        return 1.0;
    }
    binomial(k - 1, (k - 1) / 2) / 2f64.powi((k - 1) as i32)
}

/// Fraction of non-zero components of a clipped `k`-wide bundle:
/// `1` for odd `k`, `1 − C(k, k/2)/2^k` for even `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn clause_density(k: usize) -> f64 {
    assert!(k > 0, "clause must have at least one member");
    if k % 2 == 1 {
        1.0
    } else {
        1.0 - binomial(k, k / 2) / 2f64.powi(k as i32)
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k.min(n));
    let mut result = 1.0;
    for i in 0..k {
        result *= (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// Expected similarity of a true item (or true item combination) to the
/// scene hypervector after label unbinding: `∏_i c_{k_i}` over the clause
/// sizes `k_i` of all classes.
///
/// Both FactorHD similarity tests share this signal level: unbinding the
/// other labels contributes `c_{k_j}` per eliminated clause, and the tested
/// item contributes its own member correlation.
pub fn expected_signal(clause_sizes: &[usize]) -> f64 {
    clause_sizes
        .iter()
        .map(|&k| clause_member_correlation(k))
        .product()
}

/// Approximate standard deviation of the similarity noise for a scene of
/// `n_objects` objects at dimension `dim`: `sqrt(N · ρ / D)` where `ρ` is
/// the density product of one object's clauses.
pub fn noise_sigma(clause_sizes: &[usize], dim: usize, n_objects: usize) -> f64 {
    let rho: f64 = clause_sizes.iter().map(|&k| clause_density(k)).product();
    ((n_objects.max(1) as f64) * rho / dim as f64).sqrt()
}

/// The paper's Eq. 2, verbatim:
/// `TH* = 0.001 · (10⁴ + 2N − 15F − 0.001D − log₁₀(M))`.
///
/// Taken literally the `10⁴` term dominates and the result (≈ 10) exceeds
/// any normalized dot similarity; we expose it unmodified for comparison
/// and treat the leading constant as a likely typo (see DESIGN.md). Use
/// [`ThresholdPolicy::Analytic`] or a fitted [`LinearThresholdModel`] for
/// actual factorization.
pub fn paper_eq2(n_objects: usize, f_classes: usize, dim: usize, m_items: usize) -> f64 {
    0.001
        * (1e4 + 2.0 * n_objects as f64
            - 15.0 * f_classes as f64
            - 0.001 * dim as f64
            - (m_items as f64).log10())
}

/// How the factorizer picks its threshold similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ThresholdPolicy {
    /// A caller-supplied constant.
    Fixed(f64),
    /// Half the analytic expected signal, floored at `1.5 σ` noise: a
    /// parameter-free default that tracks the paper's observed trends
    /// (higher for more objects, lower for more factors). This is a
    /// *pruning* threshold — final object acceptance uses the much
    /// stronger full-reconstruction test.
    Analytic {
        /// Number of objects assumed in the scene (used for the noise
        /// floor; factorization itself adapts to the true count).
        n_objects: usize,
    },
    /// The paper's Eq. 2 evaluated verbatim — documented as out-of-scale;
    /// present so the benchmark can demonstrate the discrepancy.
    PaperEq2 {
        /// Number of objects assumed in the scene.
        n_objects: usize,
    },
}

impl Default for ThresholdPolicy {
    /// Defaults to [`ThresholdPolicy::Analytic`] with two objects.
    fn default() -> Self {
        ThresholdPolicy::Analytic { n_objects: 2 }
    }
}

impl ThresholdPolicy {
    /// Resolves the policy to a concrete threshold for `taxonomy`.
    pub fn resolve(&self, taxonomy: &Taxonomy) -> f64 {
        match *self {
            ThresholdPolicy::Fixed(th) => th,
            ThresholdPolicy::Analytic { n_objects } => {
                let sizes = taxonomy.clause_sizes();
                let signal = expected_signal(&sizes);
                let sigma = noise_sigma(&sizes, taxonomy.dim(), n_objects);
                (signal / 2.0).max(1.5 * sigma)
            }
            ThresholdPolicy::PaperEq2 { n_objects } => {
                let f = taxonomy.num_classes();
                // Eq. 2 is stated for single-level classes; use the top
                // level's codebook size.
                let m = (0..f).map(|c| taxonomy.level_size(c, 0)).max().unwrap_or(1);
                paper_eq2(n_objects, f, taxonomy.dim(), m)
            }
        }
    }
}

/// One observation for fitting a [`LinearThresholdModel`]: the empirically
/// optimal threshold `th_star` at a parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThObservation {
    /// Number of objects `N`.
    pub n_objects: usize,
    /// Number of classes `F`.
    pub f_classes: usize,
    /// Hypervector dimension `D`.
    pub dim: usize,
    /// Codebook size `M`.
    pub m_items: usize,
    /// The measured optimal threshold.
    pub th_star: f64,
}

/// A linear model `TH* ≈ β₀ + β₁·N + β₂·F + β₃·D + β₄·log₁₀(M)` — the
/// functional form of the paper's Eq. 2, with coefficients fitted to *our*
/// measured `TH*` sweep (Fig. 3 reproduction) instead of taken on faith.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearThresholdModel {
    /// Intercept `β₀`.
    pub intercept: f64,
    /// Coefficient on `N`.
    pub n_coef: f64,
    /// Coefficient on `F`.
    pub f_coef: f64,
    /// Coefficient on `D`.
    pub d_coef: f64,
    /// Coefficient on `log₁₀ M`.
    pub log_m_coef: f64,
}

impl LinearThresholdModel {
    /// Least-squares fit over `observations`.
    ///
    /// # Errors
    ///
    /// Returns [`FactorHdError::InvalidConfig`] with fewer than 5
    /// observations or a singular design matrix.
    pub fn fit(observations: &[ThObservation]) -> Result<Self, FactorHdError> {
        const P: usize = 5;
        if observations.len() < P {
            return Err(FactorHdError::InvalidConfig(format!(
                "need at least {P} observations to fit, got {}",
                observations.len()
            )));
        }
        // Normal equations XᵀX β = Xᵀy.
        let mut xtx = [[0.0f64; P]; P];
        let mut xty = [0.0f64; P];
        for obs in observations {
            let row = [
                1.0,
                obs.n_objects as f64,
                obs.f_classes as f64,
                obs.dim as f64,
                (obs.m_items as f64).log10(),
            ];
            for i in 0..P {
                xty[i] += row[i] * obs.th_star;
                for j in 0..P {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        let beta = solve_linear(xtx, xty).ok_or_else(|| {
            FactorHdError::InvalidConfig("singular design matrix in threshold fit".into())
        })?;
        Ok(LinearThresholdModel {
            intercept: beta[0],
            n_coef: beta[1],
            f_coef: beta[2],
            d_coef: beta[3],
            log_m_coef: beta[4],
        })
    }

    /// Predicts `TH*` at a parameter point.
    pub fn predict(&self, n_objects: usize, f_classes: usize, dim: usize, m_items: usize) -> f64 {
        self.intercept
            + self.n_coef * n_objects as f64
            + self.f_coef * f_classes as f64
            + self.d_coef * dim as f64
            + self.log_m_coef * (m_items as f64).log10()
    }

    /// Root-mean-square prediction error over `observations`.
    pub fn rmse(&self, observations: &[ThObservation]) -> f64 {
        if observations.is_empty() {
            return 0.0;
        }
        let sq: f64 = observations
            .iter()
            .map(|o| {
                let e = self.predict(o.n_objects, o.f_classes, o.dim, o.m_items) - o.th_star;
                e * e
            })
            .sum();
        (sq / observations.len() as f64).sqrt()
    }
}

/// Gaussian elimination with partial pivoting for the 5×5 normal equations.
fn solve_linear<const P: usize>(mut a: [[f64; P]; P], mut b: [f64; P]) -> Option<[f64; P]> {
    for col in 0..P {
        let pivot = (col..P).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in (col + 1)..P {
            let factor = a[row][col] / pivot_row[col];
            for (entry, &pivot_entry) in a[row].iter_mut().zip(pivot_row.iter()).skip(col) {
                *entry -= factor * pivot_entry;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; P];
    for col in (0..P).rev() {
        let mut sum = b[col];
        for k in (col + 1)..P {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    #[test]
    fn correlation_known_values() {
        assert!((clause_member_correlation(1) - 1.0).abs() < 1e-12);
        assert!((clause_member_correlation(2) - 0.5).abs() < 1e-12);
        assert!((clause_member_correlation(3) - 0.5).abs() < 1e-12);
        assert!((clause_member_correlation(4) - 0.375).abs() < 1e-12);
        assert!((clause_member_correlation(5) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn correlation_decreases_with_even_steps() {
        let mut prev = clause_member_correlation(1);
        for k in 2..20 {
            let c = clause_member_correlation(k);
            assert!(c <= prev + 1e-12);
            assert!(c > 0.0);
            prev = c;
        }
    }

    #[test]
    fn density_known_values() {
        assert!((clause_density(1) - 1.0).abs() < 1e-12);
        assert!((clause_density(2) - 0.5).abs() < 1e-12);
        assert!((clause_density(3) - 1.0).abs() < 1e-12);
        assert!((clause_density(4) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn signal_is_product_of_correlations() {
        // F = 3 single-level classes: k = 2 each → 0.5³ = 0.125.
        assert!((expected_signal(&[2, 2, 2]) - 0.125).abs() < 1e-12);
        // The Rep-2 setting: 2 levels → k = 3 → still 0.5 per class.
        assert!((expected_signal(&[3, 3, 3]) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn signal_matches_measured_similarity() {
        // The analytic model must agree with the actual encoder.
        use crate::{Encoder, ItemPath, ObjectSpec};
        let t = TaxonomyBuilder::new(65_536)
            .seed(3)
            .uniform_classes(3, &[4])
            .build()
            .unwrap();
        let enc = Encoder::new(&t);
        let obj = ObjectSpec::present(vec![ItemPath::top(0), ItemPath::top(1), ItemPath::top(2)]);
        let hv = enc.encode_object(&obj).unwrap();
        // Combination product of the true bare items.
        use hdc::Bind;
        let combo = t
            .item_hv(0, &ItemPath::top(0))
            .unwrap()
            .bind(&t.item_hv(1, &ItemPath::top(1)).unwrap())
            .bind(&t.item_hv(2, &ItemPath::top(2)).unwrap());
        let measured = hv.sim_bipolar(&combo);
        let predicted = expected_signal(&t.clause_sizes());
        assert!(
            (measured - predicted).abs() < 0.02,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn paper_eq2_is_out_of_scale() {
        // Documented discrepancy: the verbatim formula cannot be a
        // normalized similarity.
        let th = paper_eq2(2, 3, 1500, 256);
        assert!(th > 5.0, "verbatim Eq. 2 gave {th}");
    }

    #[test]
    fn analytic_policy_tracks_paper_trends() {
        // TH* decreases with F (paper: "decreases with the number of
        // factors F").
        let t3 = TaxonomyBuilder::new(2000)
            .uniform_classes(3, &[10])
            .build()
            .unwrap();
        let t6 = TaxonomyBuilder::new(2000)
            .uniform_classes(6, &[10])
            .build()
            .unwrap();
        let th3 = ThresholdPolicy::Analytic { n_objects: 3 }.resolve(&t3);
        let th6 = ThresholdPolicy::Analytic { n_objects: 3 }.resolve(&t6);
        assert!(th6 < th3, "th6={th6} th3={th3}");
    }

    #[test]
    fn fixed_policy_passes_through() {
        let t = TaxonomyBuilder::new(100)
            .uniform_classes(2, &[4])
            .build()
            .unwrap();
        assert_eq!(ThresholdPolicy::Fixed(0.07).resolve(&t), 0.07);
    }

    #[test]
    fn linear_fit_recovers_exact_model() {
        // Generate observations from a known linear model; fit must recover
        // the coefficients.
        let truth = LinearThresholdModel {
            intercept: 0.09,
            n_coef: 0.004,
            f_coef: -0.01,
            d_coef: -1e-6,
            log_m_coef: -0.005,
        };
        let mut obs = Vec::new();
        for n in 1..4 {
            for f in 2..5 {
                for d in [500, 1000, 2000] {
                    for m in [8, 16, 64] {
                        obs.push(ThObservation {
                            n_objects: n,
                            f_classes: f,
                            dim: d,
                            m_items: m,
                            th_star: truth.predict(n, f, d, m),
                        });
                    }
                }
            }
        }
        let fitted = LinearThresholdModel::fit(&obs).unwrap();
        // The design matrix mixes scales (D up to 2000 vs log M ≈ 1), so
        // allow for its conditioning in the tolerances.
        assert!((fitted.intercept - truth.intercept).abs() < 1e-6);
        assert!((fitted.n_coef - truth.n_coef).abs() < 1e-6);
        assert!((fitted.f_coef - truth.f_coef).abs() < 1e-6);
        assert!((fitted.d_coef - truth.d_coef).abs() < 1e-8);
        assert!((fitted.log_m_coef - truth.log_m_coef).abs() < 1e-6);
        assert!(fitted.rmse(&obs) < 1e-6);
    }

    #[test]
    fn linear_fit_needs_enough_observations() {
        let obs = vec![
            ThObservation {
                n_objects: 1,
                f_classes: 2,
                dim: 100,
                m_items: 4,
                th_star: 0.1
            };
            3
        ];
        assert!(LinearThresholdModel::fit(&obs).is_err());
    }

    #[test]
    fn noise_sigma_scales() {
        let s1 = noise_sigma(&[2, 2, 2], 1000, 1);
        let s4 = noise_sigma(&[2, 2, 2], 1000, 4);
        assert!((s4 / s1 - 2.0).abs() < 1e-9);
        let s_hi_d = noise_sigma(&[2, 2, 2], 4000, 1);
        assert!(s_hi_d < s1);
    }
}
