//! The class–subclass taxonomy: the symbol space FactorHD encodes over.
//!
//! A taxonomy declares `F` classes. Each class `i` owns a fixed *label*
//! hypervector `LABEL_i` and a hierarchy of subclass levels with `M_ℓ` items
//! per level: every level-1 item has its own codebook of level-2 children,
//! and so on (Fig. 1(a) of the paper). A single global `NULL` vector stands
//! in for "this class is not associated with the object".
//!
//! Child codebooks are derived *lazily and deterministically* from the
//! taxonomy seed and the parent path, so a taxonomy with 256 subclasses × 10
//! sub-subclasses (the paper's Rep-2/Rep-3 setting) never materializes more
//! than the codebooks actually touched.

use crate::{FactorHdError, ItemPath, ObjectSpec, Scene};
use hdc::{derive_seed, AccumHv, BipolarHv, Codebook, TernaryHv, DEFAULT_SEED};
use parking_lot::RwLock;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Domain-separation tags for seed derivation.
const TAG_LABEL: u64 = 0x4C41_4245_4C00_0001;
const TAG_NULL: u64 = 0x4E55_4C4C_0000_0002;
const TAG_CODEBOOK: u64 = 0xC0DE_B00C_0000_0003;

/// Builder for [`Taxonomy`].
///
/// ```
/// use factorhd_core::TaxonomyBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let taxonomy = TaxonomyBuilder::new(1024)
///     .seed(7)
///     .class("animal", &[256, 10]) // 256 subclasses, 10 sub-subclasses each
///     .class("color", &[10])
///     .build()?;
/// assert_eq!(taxonomy.num_classes(), 2);
/// assert_eq!(taxonomy.levels(0), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaxonomyBuilder {
    dim: usize,
    seed: u64,
    classes: Vec<(String, Vec<usize>)>,
}

impl TaxonomyBuilder {
    /// Starts a builder for hypervectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        TaxonomyBuilder {
            dim,
            seed: DEFAULT_SEED,
            classes: Vec::new(),
        }
    }

    /// Sets the derivation seed (default: [`hdc::DEFAULT_SEED`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Declares a class with the given per-level codebook sizes
    /// (`level_sizes[0]` = number of level-1 subclass items, etc.).
    pub fn class(mut self, name: &str, level_sizes: &[usize]) -> Self {
        self.classes.push((name.to_owned(), level_sizes.to_vec()));
        self
    }

    /// Declares `f` identical classes named `c0..c{f-1}`, the flat layout
    /// used by the paper's Rep-1/Rep-3 benchmarks.
    pub fn uniform_classes(mut self, f: usize, level_sizes: &[usize]) -> Self {
        for i in 0..f {
            self.classes.push((format!("c{i}"), level_sizes.to_vec()));
        }
        self
    }

    /// Finalizes the taxonomy.
    ///
    /// # Errors
    ///
    /// * [`FactorHdError::Hdc`] if `dim == 0`.
    /// * [`FactorHdError::NoClasses`] if no class was declared.
    /// * [`FactorHdError::InvalidClassSpec`] if a class has no levels, an
    ///   empty level, or a level too large for `u16` item indices.
    pub fn build(self) -> Result<Taxonomy, FactorHdError> {
        if self.dim == 0 {
            return Err(hdc::HdcError::InvalidDimension(0).into());
        }
        if self.classes.is_empty() {
            return Err(FactorHdError::NoClasses);
        }
        for (name, levels) in &self.classes {
            if levels.is_empty() {
                return Err(FactorHdError::InvalidClassSpec {
                    class: name.clone(),
                    reason: "class must have at least one subclass level".into(),
                });
            }
            if let Some(&bad) = levels.iter().find(|&&m| m == 0) {
                return Err(FactorHdError::InvalidClassSpec {
                    class: name.clone(),
                    reason: format!("level size {bad} must be positive"),
                });
            }
            if let Some(&bad) = levels.iter().find(|&&m| m > u16::MAX as usize) {
                return Err(FactorHdError::InvalidClassSpec {
                    class: name.clone(),
                    reason: format!("level size {bad} exceeds the u16 item-index range"),
                });
            }
        }

        let null = BipolarHv::random(
            self.dim,
            &mut hdc::rng_from_seed(derive_seed(&[self.seed, TAG_NULL])),
        );
        let classes: Vec<ClassInfo> = self
            .classes
            .into_iter()
            .enumerate()
            .map(|(i, (name, level_sizes))| {
                let label_seed = derive_seed(&[self.seed, TAG_LABEL, i as u64]);
                ClassInfo {
                    name,
                    label: BipolarHv::random(self.dim, &mut hdc::rng_from_seed(label_seed)),
                    level_sizes,
                }
            })
            .collect();

        let num_classes = classes.len();
        Ok(Taxonomy {
            dim: self.dim,
            seed: self.seed,
            null,
            classes,
            cache: RwLock::new(HashMap::new()),
            clause_cache: RwLock::new(ClauseCacheInner {
                map: HashMap::new(),
                generations: vec![0; num_classes],
                total_generation: 0,
            }),
            overrides: RwLock::new(BTreeMap::new()),
        })
    }
}

#[derive(Debug)]
struct ClassInfo {
    name: String,
    label: BipolarHv,
    level_sizes: Vec<usize>,
}

/// Cache of lazily derived codebooks, keyed by `(class, path)`.
type CodebookCache = RwLock<HashMap<(usize, Vec<u16>), Arc<Codebook>>>;

/// Upper bound on cached clauses. Real taxonomies have far fewer distinct
/// items than this; the cap only exists so a path-sweeping client of a
/// long-lived server cannot grow the cache without limit (past it,
/// clauses are computed but not retained).
const CLAUSE_CACHE_CAP: usize = 1 << 16;

/// Cache of clipped class clauses, keyed by `(class, path)`; the `None`
/// path is the absent-class (NULL) clause. `generations[class]` is bumped
/// by [`Taxonomy::set_codebook`] under the same write lock that purges the
/// class's entries, so a concurrently computed stale clause can detect the
/// replacement and refuse to insert itself.
#[derive(Debug, Default)]
struct ClauseCacheInner {
    map: HashMap<(usize, Option<Vec<u16>>), Arc<TernaryHv>>,
    generations: Vec<u64>,
    total_generation: u64,
}

type ClauseCache = RwLock<ClauseCacheInner>;

/// Explicitly installed codebooks (trained prototypes), keyed by
/// `(class, parent path)`. Kept sorted so model artifacts serialize in a
/// deterministic order.
type OverrideMap = RwLock<BTreeMap<(usize, Vec<u16>), Arc<Codebook>>>;

/// The class–subclass symbol space: labels, NULL, and lazily derived item
/// codebooks for every hierarchy level.
///
/// Construct via [`TaxonomyBuilder`]. Cheap to share across threads
/// (`&Taxonomy` is `Send + Sync`); codebooks are cached behind a lock.
pub struct Taxonomy {
    dim: usize,
    seed: u64,
    null: BipolarHv,
    classes: Vec<ClassInfo>,
    cache: CodebookCache,
    clause_cache: ClauseCache,
    overrides: OverrideMap,
}

impl Taxonomy {
    /// The hypervector dimension `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The derivation seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of classes `F`.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Name of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of bounds.
    pub fn class_name(&self, class: usize) -> &str {
        &self.classes[class].name
    }

    /// Number of subclass levels of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of bounds.
    #[inline]
    pub fn levels(&self, class: usize) -> usize {
        self.classes[class].level_sizes.len()
    }

    /// The maximum number of subclass levels over all classes.
    pub fn max_levels(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.level_sizes.len())
            .max()
            .unwrap_or(0)
    }

    /// Codebook size at `level` (0-based) of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `level` is out of bounds.
    #[inline]
    pub fn level_size(&self, class: usize, level: usize) -> usize {
        self.classes[class].level_sizes[level]
    }

    /// The `LABEL_i` hypervector of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of bounds.
    #[inline]
    pub fn label(&self, class: usize) -> &BipolarHv {
        &self.classes[class].label
    }

    /// The global NULL hypervector bundled into absent-class clauses.
    #[inline]
    pub fn null_hv(&self) -> &BipolarHv {
        &self.null
    }

    fn check_class(&self, class: usize) -> Result<(), FactorHdError> {
        if class >= self.classes.len() {
            return Err(FactorHdError::ClassOutOfBounds {
                index: class,
                len: self.classes.len(),
            });
        }
        Ok(())
    }

    /// Validates that `path` addresses a real item of class `class`.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassOutOfBounds`] or [`FactorHdError::InvalidPath`].
    pub fn validate_path(&self, class: usize, path: &ItemPath) -> Result<(), FactorHdError> {
        self.check_class(class)?;
        let info = &self.classes[class];
        if path.depth() > info.level_sizes.len() {
            return Err(FactorHdError::InvalidPath {
                class,
                reason: format!(
                    "path depth {} exceeds {} levels",
                    path.depth(),
                    info.level_sizes.len()
                ),
            });
        }
        for (level, &idx) in path.indices().iter().enumerate() {
            if idx as usize >= info.level_sizes[level] {
                return Err(FactorHdError::InvalidPath {
                    class,
                    reason: format!(
                        "index {idx} out of range for level {level} of size {}",
                        info.level_sizes[level]
                    ),
                });
            }
        }
        Ok(())
    }

    /// Validates every assignment of `object` against this taxonomy.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassCountMismatch`] or the path errors of
    /// [`Taxonomy::validate_path`].
    pub fn validate_object(&self, object: &ObjectSpec) -> Result<(), FactorHdError> {
        if object.num_classes() != self.classes.len() {
            return Err(FactorHdError::ClassCountMismatch {
                object: object.num_classes(),
                taxonomy: self.classes.len(),
            });
        }
        for (class, assignment) in object.assignments().iter().enumerate() {
            if let Some(path) = assignment {
                self.validate_path(class, path)?;
            }
        }
        Ok(())
    }

    /// Validates `parent` as a path with a level below it in `class`,
    /// returning that level's declared codebook size.
    fn check_parent(&self, class: usize, parent: &[u16]) -> Result<usize, FactorHdError> {
        self.check_class(class)?;
        let info = &self.classes[class];
        if parent.len() >= info.level_sizes.len() {
            return Err(FactorHdError::InvalidPath {
                class,
                reason: format!(
                    "no level below depth {} (class has {} levels)",
                    parent.len(),
                    info.level_sizes.len()
                ),
            });
        }
        for (level, &idx) in parent.iter().enumerate() {
            if idx as usize >= info.level_sizes[level] {
                return Err(FactorHdError::InvalidPath {
                    class,
                    reason: format!(
                        "parent index {idx} out of range for level {level} of size {}",
                        info.level_sizes[level]
                    ),
                });
            }
        }
        Ok(info.level_sizes[parent.len()])
    }

    /// The codebook of items at the level *below* `parent` in class `class`
    /// (`parent = &[]` gives the level-1 codebook).
    ///
    /// Codebooks are derived deterministically from the seed and cached; the
    /// same `(class, parent)` always yields the same `Arc`.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassOutOfBounds`] if `class` is invalid, or
    /// [`FactorHdError::InvalidPath`] if `parent` is not a valid item path
    /// or the class has no level below it.
    pub fn codebook(&self, class: usize, parent: &[u16]) -> Result<Arc<Codebook>, FactorHdError> {
        let m = self.check_parent(class, parent)?;
        let key = (class, parent.to_vec());
        if let Some(cb) = self.cache.read().get(&key) {
            return Ok(Arc::clone(cb));
        }
        let mut parts = vec![self.seed, TAG_CODEBOOK, class as u64, parent.len() as u64];
        parts.extend(parent.iter().map(|&i| i as u64 + 1));
        let cb = Arc::new(Codebook::derive(derive_seed(&parts), m, self.dim));
        let mut cache = self.cache.write();
        let entry = cache.entry(key).or_insert_with(|| Arc::clone(&cb));
        Ok(Arc::clone(entry))
    }

    /// Replaces the codebook below `parent` in class `class` with an
    /// explicit one — the hook the neuro-symbolic pipeline uses to install
    /// *trained prototype* vectors in place of random items.
    ///
    /// Installed codebooks are tracked separately from the lazily derived
    /// ones so model artifacts can persist exactly the state that cannot
    /// be re-derived from the seed ([`Taxonomy::codebook_overrides`]).
    ///
    /// # Errors
    ///
    /// The path errors of [`Taxonomy::codebook`], plus
    /// [`FactorHdError::Hdc`] when the codebook's size or dimension does
    /// not match the declared level.
    pub fn set_codebook(
        &self,
        class: usize,
        parent: &[u16],
        codebook: Codebook,
    ) -> Result<(), FactorHdError> {
        // Validate against the *declared* level size — deriving the default
        // codebook just to read its length would waste O(m·D) RNG work per
        // installed override.
        let expected_len = self.check_parent(class, parent)?;
        if codebook.dim() != self.dim {
            return Err(hdc::HdcError::DimensionMismatch {
                left: self.dim,
                right: codebook.dim(),
            }
            .into());
        }
        if codebook.len() != expected_len {
            return Err(FactorHdError::InvalidClassSpec {
                class: self.classes[class].name.clone(),
                reason: format!(
                    "replacement codebook has {} items, level declares {expected_len}",
                    codebook.len()
                ),
            });
        }
        let replacement = Arc::new(codebook);
        self.cache
            .write()
            .insert((class, parent.to_vec()), Arc::clone(&replacement));
        self.overrides
            .write()
            .insert((class, parent.to_vec()), replacement);
        // Cached clauses of this class may bundle replaced items. The
        // generation bump happens under the same write lock as the purge,
        // so an in-flight `clause()` computed from the old codebook sees
        // the change and refuses to cache itself.
        let mut clauses = self.clause_cache.write();
        clauses.generations[class] = clauses.generations[class].wrapping_add(1);
        clauses.total_generation = clauses.total_generation.wrapping_add(1);
        clauses.map.retain(|(c, _), _| *c != class);
        Ok(())
    }

    /// A counter incremented by every [`Taxonomy::set_codebook`] call.
    /// External caches keyed on taxonomy-derived values (e.g. the serving
    /// engine's reconstruction memo) compare this against the generation
    /// they were populated at and flush when it moves.
    pub fn codebook_generation(&self) -> u64 {
        self.clause_cache.read().total_generation
    }

    /// The explicitly installed codebooks ([`Taxonomy::set_codebook`]),
    /// sorted by `(class, parent path)` — the part of the taxonomy state
    /// that cannot be re-derived from the seed and therefore must be
    /// persisted by model artifacts.
    pub fn codebook_overrides(&self) -> Vec<(usize, Vec<u16>, Arc<Codebook>)> {
        self.overrides
            .read()
            .iter()
            .map(|((class, parent), cb)| (*class, parent.clone(), Arc::clone(cb)))
            .collect()
    }

    /// The clipped clause hypervector of one class:
    /// `clip(LABEL + Σ path items)` for a present assignment,
    /// `clip(LABEL + NULL)` for an absent one (`assignment = None`).
    ///
    /// Clauses are deterministic given the taxonomy state, so they are
    /// built once and cached — encoding a scene over a shared taxonomy is
    /// a per-class lookup plus word-level binds instead of re-deriving
    /// item vectors and re-accumulating on every call.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassOutOfBounds`] or the path errors of
    /// [`Taxonomy::validate_path`].
    pub fn clause(
        &self,
        class: usize,
        assignment: Option<&ItemPath>,
    ) -> Result<Arc<TernaryHv>, FactorHdError> {
        self.check_class(class)?;
        if let Some(path) = assignment {
            self.validate_path(class, path)?;
        }
        let key = (class, assignment.map(|p| p.indices().to_vec()));
        loop {
            let generation = {
                let cache = self.clause_cache.read();
                if let Some(clause) = cache.map.get(&key) {
                    return Ok(Arc::clone(clause));
                }
                cache.generations[class]
            };

            let mut acc = AccumHv::zeros(self.dim);
            acc.add_bipolar(self.label(class), 1);
            match assignment {
                None => acc.add_bipolar(&self.null, 1),
                Some(path) => {
                    for depth in 1..=path.depth() {
                        let parent = &path.indices()[..depth - 1];
                        let cb = self.codebook(class, parent)?;
                        acc.add_bipolar(cb.item(path.indices()[depth - 1] as usize), 1);
                    }
                }
            }
            let clause = Arc::new(acc.clip_ternary());

            let mut cache = self.clause_cache.write();
            if cache.generations[class] != generation {
                // `set_codebook` replaced this class's items while we were
                // computing: the clause may be stale, so recompute.
                continue;
            }
            if cache.map.len() >= CLAUSE_CACHE_CAP && !cache.map.contains_key(&key) {
                // Bounded: serve the computed clause without retaining it.
                return Ok(clause);
            }
            let entry = cache.map.entry(key).or_insert_with(|| Arc::clone(&clause));
            return Ok(Arc::clone(entry));
        }
    }

    /// The item hypervector addressed by `path` in class `class`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Taxonomy::validate_path`].
    pub fn item_hv(&self, class: usize, path: &ItemPath) -> Result<BipolarHv, FactorHdError> {
        self.validate_path(class, path)?;
        let parent = &path.indices()[..path.depth() - 1];
        let cb = self.codebook(class, parent)?;
        Ok(cb.item(path.leaf() as usize).clone())
    }

    /// Samples a uniformly random full-depth object (every class present).
    pub fn sample_object<R: Rng + ?Sized>(&self, rng: &mut R) -> ObjectSpec {
        let paths = self
            .classes
            .iter()
            .map(|info| {
                let indices = info
                    .level_sizes
                    .iter()
                    .map(|&m| rng.gen_range(0..m) as u16)
                    .collect();
                ItemPath::new(indices)
            })
            .collect();
        ObjectSpec::present(paths)
    }

    /// Samples a random object where each class is absent (NULL) with
    /// probability `absent_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `absent_prob` is not within `[0, 1]`.
    pub fn sample_object_with_nulls<R: Rng + ?Sized>(
        &self,
        absent_prob: f64,
        rng: &mut R,
    ) -> ObjectSpec {
        let full = self.sample_object(rng);
        let assignments = full
            .assignments()
            .iter()
            .map(|a| {
                if rng.gen_bool(absent_prob) {
                    None
                } else {
                    a.clone()
                }
            })
            .collect();
        ObjectSpec::new(assignments)
    }

    /// Samples a scene of `n` objects. When `distinct` is set, objects are
    /// pairwise different (needed to isolate accuracy from the
    /// problem-of-2 in some experiments).
    pub fn sample_scene<R: Rng + ?Sized>(&self, n: usize, distinct: bool, rng: &mut R) -> Scene {
        let mut objects: Vec<ObjectSpec> = Vec::with_capacity(n);
        while objects.len() < n {
            let candidate = self.sample_object(rng);
            if distinct && objects.contains(&candidate) {
                continue;
            }
            objects.push(candidate);
        }
        Scene::new(objects)
    }

    /// Total problem size `∏ M_ℓ` over all classes and levels — the paper's
    /// `M^F` x-axis.
    pub fn problem_size(&self) -> f64 {
        self.classes
            .iter()
            .flat_map(|c| c.level_sizes.iter())
            .map(|&m| m as f64)
            .product()
    }

    /// Per-class clause sizes `k_i` = 1 label + `levels` items, the bundle
    /// widths the threshold model needs.
    pub fn clause_sizes(&self) -> Vec<usize> {
        self.classes
            .iter()
            .map(|c| c.level_sizes.len() + 1)
            .collect()
    }
}

impl fmt::Debug for Taxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| format!("{}{:?}", c.name, c.level_sizes))
            .collect();
        f.debug_struct("Taxonomy")
            .field("dim", &self.dim)
            .field("classes", &classes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng_from_seed;

    fn small_taxonomy() -> Taxonomy {
        TaxonomyBuilder::new(512)
            .seed(42)
            .class("animal", &[8, 4])
            .class("color", &[8])
            .class("size", &[8])
            .build()
            .expect("valid taxonomy")
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            TaxonomyBuilder::new(0).class("a", &[2]).build(),
            Err(FactorHdError::Hdc(_))
        ));
        assert!(matches!(
            TaxonomyBuilder::new(64).build(),
            Err(FactorHdError::NoClasses)
        ));
        assert!(matches!(
            TaxonomyBuilder::new(64).class("a", &[]).build(),
            Err(FactorHdError::InvalidClassSpec { .. })
        ));
        assert!(matches!(
            TaxonomyBuilder::new(64).class("a", &[3, 0]).build(),
            Err(FactorHdError::InvalidClassSpec { .. })
        ));
        assert!(matches!(
            TaxonomyBuilder::new(64).class("a", &[1 << 17]).build(),
            Err(FactorHdError::InvalidClassSpec { .. })
        ));
    }

    #[test]
    fn uniform_classes_builds_f_copies() {
        let t = TaxonomyBuilder::new(256)
            .uniform_classes(4, &[16])
            .build()
            .unwrap();
        assert_eq!(t.num_classes(), 4);
        for i in 0..4 {
            assert_eq!(t.levels(i), 1);
            assert_eq!(t.level_size(i, 0), 16);
        }
        assert_eq!(t.problem_size(), 16f64.powi(4));
    }

    #[test]
    fn labels_are_distinct_and_deterministic() {
        let t1 = small_taxonomy();
        let t2 = small_taxonomy();
        assert_eq!(t1.label(0), t2.label(0));
        assert_eq!(t1.null_hv(), t2.null_hv());
        assert!(t1.label(0).sim(t1.label(1)).abs() < 0.2);
        assert!(t1.label(0).sim(t1.null_hv()).abs() < 0.2);
    }

    #[test]
    fn codebooks_cached_and_deterministic() {
        let t = small_taxonomy();
        let a = t.codebook(0, &[]).unwrap();
        let b = t.codebook(0, &[]).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 8);
        let kids = t.codebook(0, &[3]).unwrap();
        assert_eq!(kids.len(), 4);
        // Distinct parents get distinct codebooks.
        let other_kids = t.codebook(0, &[2]).unwrap();
        assert_ne!(kids.as_ref(), other_kids.as_ref());
    }

    #[test]
    fn codebook_rejects_bad_parent() {
        let t = small_taxonomy();
        assert!(matches!(
            t.codebook(0, &[99]),
            Err(FactorHdError::InvalidPath { .. })
        ));
        // Class 1 has a single level: no level below depth 1.
        assert!(matches!(
            t.codebook(1, &[0]),
            Err(FactorHdError::InvalidPath { .. })
        ));
        assert!(matches!(
            t.codebook(9, &[]),
            Err(FactorHdError::ClassOutOfBounds { .. })
        ));
    }

    #[test]
    fn item_hv_matches_codebook_entry() {
        let t = small_taxonomy();
        let path = ItemPath::new(vec![3, 1]);
        let hv = t.item_hv(0, &path).unwrap();
        let cb = t.codebook(0, &[3]).unwrap();
        assert_eq!(&hv, cb.item(1));
    }

    #[test]
    fn validate_path_bounds() {
        let t = small_taxonomy();
        assert!(t.validate_path(0, &ItemPath::new(vec![7, 3])).is_ok());
        assert!(t.validate_path(0, &ItemPath::new(vec![8])).is_err());
        assert!(t.validate_path(0, &ItemPath::new(vec![0, 0, 0])).is_err());
        assert!(t.validate_path(1, &ItemPath::new(vec![0, 0])).is_err());
    }

    #[test]
    fn validate_object_checks_count_and_paths() {
        let t = small_taxonomy();
        let ok = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![1, 2])),
            None,
            Some(ItemPath::top(5)),
        ]);
        assert!(t.validate_object(&ok).is_ok());
        let short = ObjectSpec::empty(2);
        assert!(matches!(
            t.validate_object(&short),
            Err(FactorHdError::ClassCountMismatch { .. })
        ));
    }

    #[test]
    fn sample_object_is_valid_full_depth() {
        let t = small_taxonomy();
        let mut rng = rng_from_seed(1);
        for _ in 0..20 {
            let obj = t.sample_object(&mut rng);
            t.validate_object(&obj).unwrap();
            assert_eq!(obj.assignment(0).unwrap().depth(), 2);
            assert_eq!(obj.assignment(1).unwrap().depth(), 1);
        }
    }

    #[test]
    fn sample_scene_distinct() {
        let t = small_taxonomy();
        let mut rng = rng_from_seed(2);
        let scene = t.sample_scene(5, true, &mut rng);
        assert_eq!(scene.len(), 5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(scene.objects()[i], scene.objects()[j]);
            }
        }
    }

    #[test]
    fn sample_with_nulls_extremes() {
        let t = small_taxonomy();
        let mut rng = rng_from_seed(3);
        let all_null = t.sample_object_with_nulls(1.0, &mut rng);
        assert!(all_null.assignments().iter().all(|a| a.is_none()));
        let none_null = t.sample_object_with_nulls(0.0, &mut rng);
        assert!(none_null.assignments().iter().all(|a| a.is_some()));
    }

    #[test]
    fn set_codebook_replaces_items() {
        let t = small_taxonomy();
        let replacement = Codebook::derive(0xFEED, 8, 512);
        t.set_codebook(1, &[], replacement.clone()).unwrap();
        let got = t.codebook(1, &[]).unwrap();
        assert_eq!(got.as_ref(), &replacement);
        // item_hv now resolves into the replacement.
        let hv = t.item_hv(1, &ItemPath::top(3)).unwrap();
        assert_eq!(&hv, replacement.item(3));
    }

    #[test]
    fn overrides_track_only_installed_codebooks() {
        let t = small_taxonomy();
        // Lazily derived codebooks are not overrides.
        let _ = t.codebook(0, &[]).unwrap();
        assert!(t.codebook_overrides().is_empty());
        let replacement = Codebook::derive(0xFEED, 8, 512);
        t.set_codebook(1, &[], replacement.clone()).unwrap();
        t.set_codebook(0, &[2], Codebook::derive(0xBEEF, 4, 512))
            .unwrap();
        let overrides = t.codebook_overrides();
        assert_eq!(overrides.len(), 2);
        // BTreeMap ordering: (0, [2]) before (1, []).
        assert_eq!((overrides[0].0, overrides[0].1.as_slice()), (0, &[2][..]));
        assert_eq!((overrides[1].0, overrides[1].1.as_slice()), (1, &[][..]));
        assert_eq!(overrides[1].2.as_ref(), &replacement);
    }

    #[test]
    fn clause_cached_and_correct() {
        let t = small_taxonomy();
        let path = ItemPath::new(vec![3, 1]);
        let a = t.clause(0, Some(&path)).unwrap();
        let b = t.clause(0, Some(&path)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Matches the from-scratch construction.
        let mut acc = AccumHv::zeros(512);
        let l1 = t.item_hv(0, &ItemPath::top(3)).unwrap();
        let l2 = t.item_hv(0, &path).unwrap();
        acc.add_bipolar(t.label(0), 1);
        acc.add_bipolar(&l1, 1);
        acc.add_bipolar(&l2, 1);
        assert_eq!(a.as_ref(), &acc.clip_ternary());
        // Absent clause bundles NULL.
        let absent = t.clause(1, None).unwrap();
        assert!(absent.sim_bipolar(t.null_hv()) > 0.4);
        // Validation still applies.
        assert!(t.clause(9, None).is_err());
        assert!(t.clause(0, Some(&ItemPath::top(99))).is_err());
    }

    #[test]
    fn set_codebook_invalidates_cached_clauses() {
        let t = small_taxonomy();
        let before = t.clause(1, Some(&ItemPath::top(3))).unwrap();
        let untouched = t.clause(2, Some(&ItemPath::top(0))).unwrap();
        t.set_codebook(1, &[], Codebook::derive(0xFEED, 8, 512))
            .unwrap();
        let after = t.clause(1, Some(&ItemPath::top(3))).unwrap();
        assert_ne!(before.as_ref(), after.as_ref(), "stale clause served");
        // Other classes keep their cached clauses.
        let untouched_after = t.clause(2, Some(&ItemPath::top(0))).unwrap();
        assert!(Arc::ptr_eq(&untouched, &untouched_after));
    }

    #[test]
    fn concurrent_set_codebook_never_leaves_stale_clause() {
        // Threads hammer `clause()` while the main thread swaps the
        // class's codebook; once the swap is done, the cached clause must
        // reflect the replacement (an in-flight pre-swap computation must
        // not resurrect itself into the cache).
        let t = small_taxonomy();
        let path = ItemPath::top(3);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let _ = t.clause(1, Some(&path)).unwrap();
                    }
                });
            }
            scope.spawn(|| {
                for round in 0..50u64 {
                    t.set_codebook(1, &[], Codebook::derive(round, 8, 512))
                        .unwrap();
                }
            });
        });
        // Reference: a fresh taxonomy with the same final override.
        let reference = small_taxonomy();
        reference
            .set_codebook(1, &[], Codebook::derive(49, 8, 512))
            .unwrap();
        assert_eq!(
            t.clause(1, Some(&path)).unwrap().as_ref(),
            reference.clause(1, Some(&path)).unwrap().as_ref()
        );
    }

    #[test]
    fn set_codebook_validates_shape() {
        let t = small_taxonomy();
        assert!(t.set_codebook(1, &[], Codebook::derive(1, 7, 512)).is_err());
        assert!(t.set_codebook(1, &[], Codebook::derive(1, 8, 256)).is_err());
        assert!(t.set_codebook(9, &[], Codebook::derive(1, 8, 512)).is_err());
    }

    #[test]
    fn clause_sizes_count_label_plus_levels() {
        let t = small_taxonomy();
        assert_eq!(t.clause_sizes(), vec![3, 2, 2]);
    }

    #[test]
    fn taxonomy_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Taxonomy>();
    }
}
