//! Error types for the FactorHD core.

use hdc::HdcError;
use std::error::Error;
use std::fmt;

/// Errors produced by taxonomy construction, encoding and factorization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FactorHdError {
    /// An error bubbled up from the HDC substrate.
    Hdc(HdcError),
    /// The taxonomy was declared without any class.
    NoClasses,
    /// A class was declared with no subclass levels or an empty level.
    InvalidClassSpec {
        /// Name of the offending class.
        class: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An object referenced a class index outside the taxonomy.
    ClassOutOfBounds {
        /// The referenced class index.
        index: usize,
        /// Number of classes in the taxonomy.
        len: usize,
    },
    /// An object's class assignment count differs from the class count.
    ClassCountMismatch {
        /// Number of assignments in the object.
        object: usize,
        /// Number of classes in the taxonomy.
        taxonomy: usize,
    },
    /// An item path is invalid for its class (too deep, or an index out of
    /// range for its level).
    InvalidPath {
        /// The class index.
        class: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A scene with zero objects cannot be encoded.
    EmptyScene,
    /// The queried hypervector has the wrong dimension for this taxonomy.
    DimensionMismatch {
        /// Taxonomy dimension.
        expected: usize,
        /// Query dimension.
        actual: usize,
    },
    /// Factorization found no object above the acceptance threshold.
    NoObjectFound,
    /// A configuration value was outside its valid range.
    InvalidConfig(String),
}

impl fmt::Display for FactorHdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorHdError::Hdc(e) => write!(f, "substrate error: {e}"),
            FactorHdError::NoClasses => write!(f, "taxonomy must declare at least one class"),
            FactorHdError::InvalidClassSpec { class, reason } => {
                write!(f, "invalid class `{class}`: {reason}")
            }
            FactorHdError::ClassOutOfBounds { index, len } => {
                write!(f, "class index {index} out of bounds for {len} classes")
            }
            FactorHdError::ClassCountMismatch { object, taxonomy } => {
                write!(
                    f,
                    "object assigns {object} classes but the taxonomy has {taxonomy}"
                )
            }
            FactorHdError::InvalidPath { class, reason } => {
                write!(f, "invalid item path for class {class}: {reason}")
            }
            FactorHdError::EmptyScene => write!(f, "cannot encode a scene with no objects"),
            FactorHdError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: taxonomy is {expected}, query is {actual}"
                )
            }
            FactorHdError::NoObjectFound => {
                write!(f, "no object cleared the acceptance threshold")
            }
            FactorHdError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for FactorHdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FactorHdError::Hdc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HdcError> for FactorHdError {
    fn from(value: HdcError) -> Self {
        FactorHdError::Hdc(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let cases: Vec<FactorHdError> = vec![
            FactorHdError::Hdc(HdcError::EmptyCodebook),
            FactorHdError::NoClasses,
            FactorHdError::InvalidClassSpec {
                class: "color".into(),
                reason: "no levels".into(),
            },
            FactorHdError::ClassOutOfBounds { index: 4, len: 3 },
            FactorHdError::ClassCountMismatch {
                object: 2,
                taxonomy: 3,
            },
            FactorHdError::InvalidPath {
                class: 0,
                reason: "too deep".into(),
            },
            FactorHdError::EmptyScene,
            FactorHdError::DimensionMismatch {
                expected: 100,
                actual: 50,
            },
            FactorHdError::NoObjectFound,
            FactorHdError::InvalidConfig("beam width zero".into()),
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn hdc_errors_convert_and_source() {
        let err: FactorHdError = HdcError::EmptyCodebook.into();
        assert!(matches!(err, FactorHdError::Hdc(_)));
        assert!(Error::source(&err).is_some());
    }
}
