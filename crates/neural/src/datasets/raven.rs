//! Synthetic RAVEN-style scenes.
//!
//! RAVEN (Zhang et al., CVPR 2019) panels contain 1–9 objects described by
//! position, color, size and type attributes, arranged in seven
//! configurations. The paper encodes each object with three codebooks —
//! position, color, and the 30 size×type combinations — and factorizes
//! whole panels (Table I). We do not have the rendered dataset, so this
//! module samples ground-truth attribute tuples with the same distributions
//! (object counts and attribute arities per configuration); the symbolic
//! encode→factorize path is identical to what rendered panels would feed.

use rand::seq::SliceRandom;
use rand::Rng;

/// Number of color values in RAVEN.
pub const NUM_COLORS: usize = 10;
/// Number of sizes in RAVEN.
pub const NUM_SIZES: usize = 6;
/// Number of object types in RAVEN.
pub const NUM_TYPES: usize = 5;
/// Size×type combinations ("the third \[codebook\] combines size and type
/// attributes, resulting in 30 size-type combinations", §IV-A).
pub const NUM_SIZE_TYPES: usize = NUM_SIZES * NUM_TYPES;

/// The seven RAVEN panel configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RavenConfig {
    /// A single centered object.
    Center,
    /// Up to 4 objects on a 2×2 grid.
    Grid2x2,
    /// Up to 9 objects on a 3×3 grid.
    Grid3x3,
    /// Two side-by-side components.
    LeftRight,
    /// Two stacked components.
    UpDown,
    /// An outer object containing an inner one.
    OutInCenter,
    /// An outer object with an inner 2×2 grid.
    OutInGrid,
}

impl RavenConfig {
    /// All seven configurations, in Table I order.
    pub const ALL: [RavenConfig; 7] = [
        RavenConfig::Center,
        RavenConfig::Grid2x2,
        RavenConfig::Grid3x3,
        RavenConfig::LeftRight,
        RavenConfig::UpDown,
        RavenConfig::OutInCenter,
        RavenConfig::OutInGrid,
    ];

    /// Human-readable configuration name.
    pub fn name(&self) -> &'static str {
        match self {
            RavenConfig::Center => "Center",
            RavenConfig::Grid2x2 => "2x2Grid",
            RavenConfig::Grid3x3 => "3x3Grid",
            RavenConfig::LeftRight => "L-R",
            RavenConfig::UpDown => "U-D",
            RavenConfig::OutInCenter => "O-IC",
            RavenConfig::OutInGrid => "O-IG",
        }
    }

    /// Number of distinct positions the configuration offers.
    pub fn num_positions(&self) -> usize {
        match self {
            RavenConfig::Center => 1,
            RavenConfig::Grid2x2 => 4,
            RavenConfig::Grid3x3 => 9,
            RavenConfig::LeftRight | RavenConfig::UpDown | RavenConfig::OutInCenter => 2,
            RavenConfig::OutInGrid => 5,
        }
    }

    /// Minimum number of objects a panel of this configuration contains.
    pub fn min_objects(&self) -> usize {
        match self {
            RavenConfig::Center => 1,
            RavenConfig::LeftRight | RavenConfig::UpDown | RavenConfig::OutInCenter => 2,
            RavenConfig::OutInGrid => 2,
            _ => 1,
        }
    }

    /// Maximum number of objects (= positions; one object per slot).
    pub fn max_objects(&self) -> usize {
        self.num_positions()
    }
}

/// One object of a RAVEN panel: its attribute value per codebook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RavenObject {
    /// Position slot (0-based, configuration-dependent arity).
    pub position: u16,
    /// Color index (0..10).
    pub color: u16,
    /// Size×type combination index (0..30).
    pub size_type: u16,
}

/// A sampled panel: configuration plus its objects (distinct positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RavenScene {
    /// The panel configuration.
    pub config: RavenConfig,
    /// Objects, each at a distinct position.
    pub objects: Vec<RavenObject>,
}

impl RavenScene {
    /// Samples a panel: a uniform object count in
    /// `[min_objects, max_objects]`, distinct positions, and independent
    /// color / size-type draws.
    pub fn sample<R: Rng + ?Sized>(config: RavenConfig, rng: &mut R) -> Self {
        let n = rng.gen_range(config.min_objects()..=config.max_objects());
        Self::sample_with_count(config, n, rng)
    }

    /// Samples a panel with exactly `n` objects.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the configuration's position count.
    pub fn sample_with_count<R: Rng + ?Sized>(config: RavenConfig, n: usize, rng: &mut R) -> Self {
        assert!(n >= 1, "panels contain at least one object");
        assert!(
            n <= config.max_objects(),
            "{n} objects exceed {} positions of {}",
            config.max_objects(),
            config.name()
        );
        let mut positions: Vec<u16> = (0..config.num_positions() as u16).collect();
        positions.shuffle(rng);
        let objects = positions[..n]
            .iter()
            .map(|&position| RavenObject {
                position,
                color: rng.gen_range(0..NUM_COLORS as u16),
                size_type: rng.gen_range(0..NUM_SIZE_TYPES as u16),
            })
            .collect();
        RavenScene { config, objects }
    }

    /// Number of objects in the panel.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the panel has no objects (never produced by sampling).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng_from_seed;

    #[test]
    fn configuration_arities() {
        assert_eq!(RavenConfig::Center.num_positions(), 1);
        assert_eq!(RavenConfig::Grid3x3.num_positions(), 9);
        assert_eq!(RavenConfig::ALL.len(), 7);
        assert_eq!(NUM_SIZE_TYPES, 30);
    }

    #[test]
    fn sampled_positions_are_distinct() {
        let mut rng = rng_from_seed(1);
        for config in RavenConfig::ALL {
            for _ in 0..20 {
                let scene = RavenScene::sample(config, &mut rng);
                let mut positions: Vec<u16> = scene.objects.iter().map(|o| o.position).collect();
                positions.sort_unstable();
                let before = positions.len();
                positions.dedup();
                assert_eq!(positions.len(), before, "duplicate position in {config:?}");
                assert!(scene.len() >= config.min_objects());
                assert!(scene.len() <= config.max_objects());
            }
        }
    }

    #[test]
    fn attributes_in_range() {
        let mut rng = rng_from_seed(2);
        let scene = RavenScene::sample_with_count(RavenConfig::Grid3x3, 9, &mut rng);
        assert_eq!(scene.len(), 9);
        assert!(!scene.is_empty());
        for obj in &scene.objects {
            assert!((obj.position as usize) < 9);
            assert!((obj.color as usize) < NUM_COLORS);
            assert!((obj.size_type as usize) < NUM_SIZE_TYPES);
        }
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_count_panics() {
        let mut rng = rng_from_seed(3);
        let _ = RavenScene::sample_with_count(RavenConfig::Center, 2, &mut rng);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = RavenConfig::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["Center", "2x2Grid", "3x3Grid", "L-R", "U-D", "O-IC", "O-IG"]
        );
    }
}
