//! CIFAR-10 and CIFAR-100 label spaces.
//!
//! Images are simulated by the feature model (see DESIGN.md), but the
//! *label structure* is the real one: CIFAR-10's ten classes, and
//! CIFAR-100's two-level taxonomy of 20 coarse superclasses × 5 fine
//! classes each — the natural class-subclass hierarchy the paper factorizes
//! ("Cifar-100 datasets naturally have two class levels", §IV-A).

/// The ten CIFAR-10 class names.
pub const CIFAR10_CLASSES: [&str; 10] = [
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
];

/// The 20 CIFAR-100 coarse superclass names, in canonical order.
pub const CIFAR100_COARSE: [&str; 20] = [
    "aquatic mammals",
    "fish",
    "flowers",
    "food containers",
    "fruit and vegetables",
    "household electrical devices",
    "household furniture",
    "insects",
    "large carnivores",
    "large man-made outdoor things",
    "large natural outdoor scenes",
    "large omnivores and herbivores",
    "medium-sized mammals",
    "non-insect invertebrates",
    "people",
    "reptiles",
    "small mammals",
    "trees",
    "vehicles 1",
    "vehicles 2",
];

/// The 100 CIFAR-100 fine class names grouped by coarse superclass
/// (5 per row, rows in [`CIFAR100_COARSE`] order).
pub const CIFAR100_FINE: [[&str; 5]; 20] = [
    ["beaver", "dolphin", "otter", "seal", "whale"],
    ["aquarium fish", "flatfish", "ray", "shark", "trout"],
    ["orchids", "poppies", "roses", "sunflowers", "tulips"],
    ["bottles", "bowls", "cans", "cups", "plates"],
    ["apples", "mushrooms", "oranges", "pears", "sweet peppers"],
    [
        "clock",
        "computer keyboard",
        "lamp",
        "telephone",
        "television",
    ],
    ["bed", "chair", "couch", "table", "wardrobe"],
    ["bee", "beetle", "butterfly", "caterpillar", "cockroach"],
    ["bear", "leopard", "lion", "tiger", "wolf"],
    ["bridge", "castle", "house", "road", "skyscraper"],
    ["cloud", "forest", "mountain", "plain", "sea"],
    ["camel", "cattle", "chimpanzee", "elephant", "kangaroo"],
    ["fox", "porcupine", "possum", "raccoon", "skunk"],
    ["crab", "lobster", "snail", "spider", "worm"],
    ["baby", "boy", "girl", "man", "woman"],
    ["crocodile", "dinosaur", "lizard", "snake", "turtle"],
    ["hamster", "mouse", "rabbit", "shrew", "squirrel"],
    ["maple", "oak", "palm", "pine", "willow"],
    ["bicycle", "bus", "motorcycle", "pickup truck", "train"],
    ["lawn mower", "rocket", "streetcar", "tank", "tractor"],
];

/// Number of CIFAR-100 fine classes.
pub const CIFAR100_NUM_FINE: usize = 100;
/// Number of CIFAR-100 coarse superclasses.
pub const CIFAR100_NUM_COARSE: usize = 20;
/// Fine classes per coarse superclass.
pub const CIFAR100_FINE_PER_COARSE: usize = 5;

/// The coarse superclass index of a fine class index (fine classes are
/// numbered row-major through [`CIFAR100_FINE`]).
///
/// # Panics
///
/// Panics if `fine >= 100`.
pub fn coarse_of(fine: usize) -> usize {
    assert!(fine < CIFAR100_NUM_FINE, "fine class {fine} out of range");
    fine / CIFAR100_FINE_PER_COARSE
}

/// The within-superclass position (0..5) of a fine class.
///
/// # Panics
///
/// Panics if `fine >= 100`.
pub fn fine_within_coarse(fine: usize) -> usize {
    assert!(fine < CIFAR100_NUM_FINE, "fine class {fine} out of range");
    fine % CIFAR100_FINE_PER_COARSE
}

/// The name of a fine class index.
///
/// # Panics
///
/// Panics if `fine >= 100`.
pub fn fine_name(fine: usize) -> &'static str {
    CIFAR100_FINE[coarse_of(fine)][fine_within_coarse(fine)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_space_shapes() {
        assert_eq!(CIFAR10_CLASSES.len(), 10);
        assert_eq!(CIFAR100_COARSE.len(), 20);
        assert_eq!(CIFAR100_FINE.len(), 20);
        assert_eq!(
            CIFAR100_FINE.iter().map(|row| row.len()).sum::<usize>(),
            100
        );
    }

    #[test]
    fn coarse_mapping_is_block_structured() {
        assert_eq!(coarse_of(0), 0);
        assert_eq!(coarse_of(4), 0);
        assert_eq!(coarse_of(5), 1);
        assert_eq!(coarse_of(99), 19);
    }

    #[test]
    fn fine_names_resolve() {
        assert_eq!(fine_name(0), "beaver");
        assert_eq!(fine_name(7), "ray");
        assert_eq!(fine_name(99), "tractor");
    }

    #[test]
    fn all_fine_names_unique() {
        let mut names: Vec<&str> = (0..100).map(fine_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coarse_of_bounds() {
        let _ = coarse_of(100);
    }
}
