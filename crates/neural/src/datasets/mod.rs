//! Synthetic dataset substrates: CIFAR label taxonomies and RAVEN panels.

pub mod cifar;
pub mod raven;
