//! Prototype (centroid) training in hypervector space.
//!
//! Training mirrors Fig. 1(b): sample images per class through the feature
//! model, encode each with the random projection, bundle per class, and
//! binarize the centroid. The resulting prototype codebook is what gets
//! installed into the FactorHD taxonomy via `Taxonomy::set_codebook`.
//!
//! The `superposition` knob reproduces the paper's bundled-image training
//! (Table II, "number of bundled image inputs"): each training presentation
//! superposes the features of `k` images of *different* classes before
//! encoding, and the shared (interfered) code is credited to every class in
//! the bundle. Larger `k` trains faster but yields noisier prototypes.

use crate::{FeatureModel, RandomProjection};
use hdc::{AccumHv, BipolarHv, Codebook};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`train_prototypes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainConfig {
    /// Training presentations accumulated per class.
    pub samples_per_class: usize,
    /// Number of images superposed per presentation (1 = standard).
    pub superposition: usize,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            samples_per_class: 32,
            superposition: 1,
            seed: 0x7EA1,
        }
    }
}

/// Trains one prototype hypervector per class and returns them as a
/// codebook (class index = item index).
///
/// # Panics
///
/// Panics if `samples_per_class == 0`, `superposition == 0`, or
/// `superposition > model.n_classes()` (bundled images are drawn from
/// distinct classes).
pub fn train_prototypes(
    model: &FeatureModel,
    projection: &RandomProjection,
    config: TrainConfig,
) -> Codebook {
    assert!(
        config.samples_per_class > 0,
        "need at least one sample per class"
    );
    assert!(config.superposition > 0, "superposition must be at least 1");
    assert!(
        config.superposition <= model.n_classes(),
        "cannot superpose {} distinct classes out of {}",
        config.superposition,
        model.n_classes()
    );
    assert_eq!(
        model.feat_dim(),
        projection.feat_dim(),
        "feature model and projection disagree on feature dim"
    );

    let n = model.n_classes();
    let dim = projection.dim();
    let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[config.seed, 0x7137]));
    let mut accumulators: Vec<AccumHv> = (0..n).map(|_| AccumHv::zeros(dim)).collect();
    let mut presentations = vec![0usize; n];
    let mut class_order: Vec<usize> = (0..n).collect();

    // Round-robin over anchor classes until every class has its quota.
    while presentations.iter().any(|&p| p < config.samples_per_class) {
        for anchor in 0..n {
            if presentations[anchor] >= config.samples_per_class {
                continue;
            }
            let classes = bundle_classes(anchor, &mut class_order, config.superposition, &mut rng);
            let code = encode_bundle(model, projection, &classes, &mut rng);
            for &c in &classes {
                accumulators[c].add_bipolar(&code, 1);
                presentations[c] = presentations[c].saturating_add(1);
            }
        }
    }

    let items: Vec<BipolarHv> = accumulators.iter().map(AccumHv::sign_bipolar).collect();
    Codebook::from_items(items).expect("n > 0 prototypes of equal dim")
}

/// Picks `k` distinct classes including `anchor`.
fn bundle_classes<R: Rng + ?Sized>(
    anchor: usize,
    class_order: &mut [usize],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    if k == 1 {
        return vec![anchor];
    }
    class_order.shuffle(rng);
    let mut picked = vec![anchor];
    for &c in class_order.iter() {
        if picked.len() == k {
            break;
        }
        if c != anchor {
            picked.push(c);
        }
    }
    picked
}

/// Superposes the features of one image per class in `classes` and encodes
/// the sum.
pub(crate) fn encode_bundle<R: Rng + ?Sized>(
    model: &FeatureModel,
    projection: &RandomProjection,
    classes: &[usize],
    rng: &mut R,
) -> BipolarHv {
    let mut sum = vec![0.0f64; model.feat_dim()];
    for &c in classes {
        for (s, x) in sum.iter_mut().zip(model.sample(c, rng)) {
            *s += x;
        }
    }
    projection.encode(&sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng_from_seed;

    fn setup() -> (FeatureModel, RandomProjection) {
        let model = FeatureModel::derive(11, 10, 64, 0.2);
        let projection = RandomProjection::derive(11, 64, 2048);
        (model, projection)
    }

    #[test]
    fn prototypes_classify_fresh_samples() {
        let (model, projection) = setup();
        let prototypes = train_prototypes(&model, &projection, TrainConfig::default());
        let mut rng = rng_from_seed(1);
        let mut correct = 0;
        let trials = 200;
        for t in 0..trials {
            let class = t % 10;
            let query = projection.encode(&model.sample(class, &mut rng));
            if prototypes.best_match(&query).unwrap().index == class {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / trials as f64 > 0.9,
            "accuracy {correct}/{trials}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (model, projection) = setup();
        let a = train_prototypes(&model, &projection, TrainConfig::default());
        let b = train_prototypes(&model, &projection, TrainConfig::default());
        assert_eq!(a.item(3), b.item(3));
    }

    #[test]
    fn prototypes_are_class_distinct() {
        let (model, projection) = setup();
        let prototypes = train_prototypes(&model, &projection, TrainConfig::default());
        for i in 0..10 {
            for j in (i + 1)..10 {
                let sim = prototypes.item(i).sim(prototypes.item(j));
                assert!(sim < 0.6, "prototypes {i},{j} too similar: {sim}");
            }
        }
    }

    #[test]
    fn superposed_training_still_learns_but_noisier() {
        let (model, projection) = setup();
        let clean = train_prototypes(&model, &projection, TrainConfig::default());
        let superposed = train_prototypes(
            &model,
            &projection,
            TrainConfig {
                superposition: 3,
                ..TrainConfig::default()
            },
        );
        let mut rng = rng_from_seed(2);
        let eval = |cb: &hdc::Codebook, rng: &mut rand::rngs::StdRng| {
            let mut correct = 0;
            for t in 0..200 {
                let class = t % 10;
                let q = projection.encode(&model.sample(class, rng));
                if cb.best_match(&q).unwrap().index == class {
                    correct += 1;
                }
            }
            correct as f64 / 200.0
        };
        let acc_clean = eval(&clean, &mut rng);
        let acc_super = eval(&superposed, &mut rng);
        assert!(
            acc_super > 0.5,
            "superposed training collapsed: {acc_super}"
        );
        assert!(acc_clean >= acc_super, "{acc_clean} vs {acc_super}");
    }

    #[test]
    #[should_panic(expected = "superpose")]
    fn rejects_oversized_bundles() {
        let (model, projection) = setup();
        let _ = train_prototypes(
            &model,
            &projection,
            TrainConfig {
                superposition: 11,
                ..TrainConfig::default()
            },
        );
    }
}
