//! Simulated convolutional feature extractor.
//!
//! The paper trains a ResNet-18 as the "neuro" half of the neuro-symbolic
//! model and feeds its penultimate-layer features into the HDC encoder.
//! We have neither the datasets nor a CNN training stack, so this module
//! substitutes a **class-conditional Gaussian feature model**: each class
//! owns a random unit-norm mean vector, and sampling an "image" of that
//! class draws `mean + σ·N(0, I)`.
//!
//! What matters to the downstream symbolic layer is only the *error
//! statistics* of the front-end, and those are fully controlled by `σ`:
//! [`FeatureModel::calibrate`] binary-searches `σ` until the model's own
//! nearest-mean accuracy matches a published CNN accuracy (≈95.4% for
//! ResNet-18 on CIFAR-10, ≈78% top-1 fine on CIFAR-100). See DESIGN.md,
//! substitution table.

use rand::Rng;

/// One standard-normal draw (Box–Muller; avoids a distributions
/// dependency).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// A class-conditional Gaussian feature model standing in for a trained
/// CNN feature extractor.
///
/// ```
/// use factorhd_neural::FeatureModel;
/// use hdc::rng_from_seed;
///
/// let model = FeatureModel::derive(7, 10, 64, 0.2);
/// let mut rng = rng_from_seed(1);
/// let features = model.sample(3, &mut rng);
/// assert_eq!(features.len(), 64);
/// assert_eq!(model.classify(&features), 3); // low noise: easy call
/// ```
#[derive(Debug, Clone)]
pub struct FeatureModel {
    means: Vec<Vec<f64>>,
    feat_dim: usize,
    noise: f64,
}

impl FeatureModel {
    /// Derives a model with `n_classes` random unit-norm class means in
    /// `R^feat_dim` and within-class noise `σ = noise` per component.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`, `feat_dim == 0`, or `noise < 0`.
    pub fn derive(seed: u64, n_classes: usize, feat_dim: usize, noise: f64) -> Self {
        assert!(n_classes > 0, "need at least one class");
        assert!(feat_dim > 0, "feature dimension must be positive");
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xFEA7]));
        let means = (0..n_classes)
            .map(|_| {
                let mut v: Vec<f64> = (0..feat_dim).map(|_| standard_normal(&mut rng)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect();
        FeatureModel {
            means,
            feat_dim,
            noise,
        }
    }

    /// Number of classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.means.len()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// The within-class noise `σ`.
    #[inline]
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The mean feature vector of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of bounds.
    pub fn mean(&self, class: usize) -> &[f64] {
        &self.means[class]
    }

    /// Samples the features of one "image" of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of bounds.
    pub fn sample<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> Vec<f64> {
        self.means[class]
            .iter()
            .map(|&m| m + self.noise * standard_normal(rng))
            .collect()
    }

    /// Nearest-mean classification of a feature vector — the model's own
    /// "CNN accuracy" reference classifier.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != feat_dim`.
    pub fn classify(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.feat_dim, "feature length mismatch");
        let mut best = (0usize, f64::INFINITY);
        for (c, mean) in self.means.iter().enumerate() {
            let dist: f64 = mean
                .iter()
                .zip(features)
                .map(|(m, x)| (m - x) * (m - x))
                .sum();
            if dist < best.1 {
                best = (c, dist);
            }
        }
        best.0
    }

    /// Monte-Carlo estimate of the nearest-mean top-1 accuracy.
    pub fn reference_accuracy(&self, trials_per_class: usize, seed: u64) -> f64 {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xACC0]));
        let mut correct = 0usize;
        let mut total = 0usize;
        for class in 0..self.n_classes() {
            for _ in 0..trials_per_class {
                let x = self.sample(class, &mut rng);
                if self.classify(&x) == class {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    /// Binary-searches the noise level so the model's reference accuracy
    /// matches `target_accuracy` — the calibration step that ties this
    /// simulator to a published CNN's error rate.
    ///
    /// # Panics
    ///
    /// Panics if `target_accuracy` is not in `(1/n_classes, 1]`.
    pub fn calibrate(
        seed: u64,
        n_classes: usize,
        feat_dim: usize,
        target_accuracy: f64,
        trials_per_class: usize,
    ) -> Self {
        assert!(
            target_accuracy > 1.0 / n_classes as f64 && target_accuracy <= 1.0,
            "target accuracy {target_accuracy} unreachable for {n_classes} classes"
        );
        let (mut lo, mut hi) = (0.0f64, 4.0f64);
        let mut model = FeatureModel::derive(seed, n_classes, feat_dim, 0.0);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            model.noise = mid;
            let acc = model.reference_accuracy(trials_per_class, seed ^ 0x5EED);
            if acc > target_accuracy {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        model.noise = 0.5 * (lo + hi);
        model
    }
}

/// Preset feature models calibrated to published ResNet-18 accuracies.
///
/// The targets are the reference points Table II compares against:
/// ResNet-18 reaches ≈95.4% on CIFAR-10 and ≈78% top-1 (fine labels) on
/// CIFAR-100.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedResNet18;

impl SimulatedResNet18 {
    /// Published reference accuracy on CIFAR-10.
    pub const CIFAR10_ACCURACY: f64 = 0.954;
    /// Published reference top-1 fine-label accuracy on CIFAR-100.
    pub const CIFAR100_ACCURACY: f64 = 0.78;
    /// Published reference coarse-label (20 superclasses) accuracy on
    /// CIFAR-100.
    pub const CIFAR100_COARSE_ACCURACY: f64 = 0.86;

    /// A feature model calibrated to ResNet-18's CIFAR-10 accuracy.
    pub fn cifar10(seed: u64) -> FeatureModel {
        FeatureModel::calibrate(seed, 10, 64, Self::CIFAR10_ACCURACY, 400)
    }

    /// A feature model calibrated to ResNet-18's CIFAR-100 fine-label
    /// accuracy.
    pub fn cifar100(seed: u64) -> FeatureModel {
        FeatureModel::calibrate(seed, 100, 64, Self::CIFAR100_ACCURACY, 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng_from_seed;

    #[test]
    fn derive_is_deterministic() {
        let a = FeatureModel::derive(1, 4, 16, 0.3);
        let b = FeatureModel::derive(1, 4, 16, 0.3);
        assert_eq!(a.mean(2), b.mean(2));
    }

    #[test]
    fn means_are_unit_norm() {
        let m = FeatureModel::derive(2, 6, 32, 0.1);
        for c in 0..6 {
            let norm: f64 = m.mean(c).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_noise_classifies_perfectly() {
        let m = FeatureModel::derive(3, 10, 32, 0.0);
        assert_eq!(m.reference_accuracy(20, 1), 1.0);
    }

    #[test]
    fn huge_noise_classifies_near_chance() {
        let m = FeatureModel::derive(4, 10, 32, 10.0);
        let acc = m.reference_accuracy(100, 2);
        assert!(acc < 0.35, "accuracy {acc} too high for huge noise");
    }

    #[test]
    fn accuracy_decreases_with_noise() {
        let lo = FeatureModel::derive(5, 10, 32, 0.1).reference_accuracy(100, 3);
        let hi = FeatureModel::derive(5, 10, 32, 0.8).reference_accuracy(100, 3);
        assert!(lo > hi, "accuracy should fall with noise: {lo} vs {hi}");
    }

    #[test]
    fn calibration_hits_target() {
        let target = 0.95;
        let m = FeatureModel::calibrate(6, 10, 64, target, 300);
        let acc = m.reference_accuracy(400, 99);
        assert!(
            (acc - target).abs() < 0.03,
            "calibrated accuracy {acc} misses target {target}"
        );
    }

    #[test]
    fn simulated_resnet_cifar10_is_calibrated() {
        let m = SimulatedResNet18::cifar10(7);
        let acc = m.reference_accuracy(300, 11);
        assert!(
            (acc - SimulatedResNet18::CIFAR10_ACCURACY).abs() < 0.04,
            "accuracy {acc}"
        );
    }

    #[test]
    fn sample_has_expected_spread() {
        let m = FeatureModel::derive(8, 3, 1000, 0.25);
        let mut rng = rng_from_seed(12);
        let x = m.sample(0, &mut rng);
        let dist: f64 = m
            .mean(0)
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // Expected distance ≈ σ √d = 0.25 · √1000 ≈ 7.9.
        assert!((dist - 7.9).abs() < 1.0, "distance {dist}");
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn calibrate_rejects_impossible_targets() {
        let _ = FeatureModel::calibrate(9, 10, 16, 0.05, 10);
    }
}
