//! Random-projection feature-to-hypervector encoder.
//!
//! Maps a real feature vector `x ∈ R^d` to a bipolar hypervector via sign
//! random projection: `hv_k = sign(w_k · x)` with fixed random `±1` rows
//! `w_k`. Angle is approximately preserved (`P(bit differs) = θ/π`), so
//! images of the same class land near their class prototype in HV space —
//! the property the FactorHD factorization relies on.

use crate::features::standard_normal;
use hdc::BipolarHv;

/// A fixed sign-random-projection encoder.
///
/// ```
/// use factorhd_neural::RandomProjection;
///
/// let proj = RandomProjection::derive(3, 16, 1024);
/// let a = proj.encode(&vec![0.5; 16]);
/// let b = proj.encode(&vec![0.51; 16]); // tiny perturbation
/// assert!(a.sim(&b) > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct RandomProjection {
    /// Row-major `dim × feat_dim` Gaussian weights.
    weights: Vec<f64>,
    feat_dim: usize,
    dim: usize,
}

impl RandomProjection {
    /// Derives a projection with Gaussian rows from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `feat_dim == 0` or `dim == 0`.
    pub fn derive(seed: u64, feat_dim: usize, dim: usize) -> Self {
        assert!(feat_dim > 0, "feature dimension must be positive");
        assert!(dim > 0, "hypervector dimension must be positive");
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0x9407]));
        let weights = (0..dim * feat_dim)
            .map(|_| standard_normal(&mut rng))
            .collect();
        RandomProjection {
            weights,
            feat_dim,
            dim,
        }
    }

    /// Input feature dimensionality.
    #[inline]
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }

    /// Output hypervector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a feature vector into a bipolar hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != feat_dim`.
    pub fn encode(&self, features: &[f64]) -> BipolarHv {
        assert_eq!(
            features.len(),
            self.feat_dim,
            "feature length {} != projection input {}",
            features.len(),
            self.feat_dim
        );
        let comps: Vec<i8> = (0..self.dim)
            .map(|k| {
                let row = &self.weights[k * self.feat_dim..(k + 1) * self.feat_dim];
                let dot: f64 = row.iter().zip(features).map(|(w, x)| w * x).sum();
                if dot < 0.0 {
                    -1
                } else {
                    1
                }
            })
            .collect();
        BipolarHv::from_components(&comps).expect("dim > 0 by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureModel;
    use hdc::rng_from_seed;

    #[test]
    fn derive_is_deterministic() {
        let a = RandomProjection::derive(1, 8, 256);
        let b = RandomProjection::derive(1, 8, 256);
        assert_eq!(a.encode(&[1.0; 8]), b.encode(&[1.0; 8]));
    }

    #[test]
    fn scaling_invariance() {
        // Sign projection only sees direction.
        let proj = RandomProjection::derive(2, 8, 512);
        let x: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let scaled: Vec<f64> = x.iter().map(|v| v * 7.5).collect();
        assert_eq!(proj.encode(&x), proj.encode(&scaled));
    }

    #[test]
    fn opposite_inputs_give_negated_codes() {
        let proj = RandomProjection::derive(3, 8, 512);
        let x: Vec<f64> = (0..8).map(|i| (i as f64).sin() + 0.1).collect();
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        let sim = proj.encode(&x).sim(&proj.encode(&neg));
        assert!(sim < -0.95, "sim {sim}");
    }

    #[test]
    fn orthogonal_inputs_give_uncorrelated_codes() {
        let proj = RandomProjection::derive(4, 2, 8192);
        let a = proj.encode(&[1.0, 0.0]);
        let b = proj.encode(&[0.0, 1.0]);
        assert!(a.sim(&b).abs() < 0.05, "sim {}", a.sim(&b));
    }

    #[test]
    fn angle_maps_to_bit_flip_rate() {
        // P(bit differs) = θ/π; for θ = 60°, expect ≈ 1/3 flips.
        let proj = RandomProjection::derive(5, 2, 16_384);
        let a = proj.encode(&[1.0, 0.0]);
        let b = proj.encode(&[0.5, 3f64.sqrt() / 2.0]);
        let flip_rate = a.hamming(&b) as f64 / 16_384.0;
        assert!(
            (flip_rate - 1.0 / 3.0).abs() < 0.02,
            "flip rate {flip_rate}"
        );
    }

    #[test]
    fn same_class_samples_land_near_each_other() {
        let model = FeatureModel::derive(6, 10, 64, 0.2);
        let proj = RandomProjection::derive(6, 64, 2048);
        let mut rng = rng_from_seed(1);
        // With σ = 0.2 in 64 dims the noise norm (≈1.6) dominates the unit
        // mean, so within-class angular similarity is modest (~0.2) but
        // still clearly above between-class.
        let a = proj.encode(&model.sample(4, &mut rng));
        let b = proj.encode(&model.sample(4, &mut rng));
        let other = proj.encode(&model.sample(7, &mut rng));
        assert!(a.sim(&b) > 0.12, "within-class sim {}", a.sim(&b));
        assert!(a.sim(&other) < a.sim(&b), "between-class should be lower");
    }

    #[test]
    #[should_panic(expected = "feature length")]
    fn wrong_feature_length_panics() {
        let proj = RandomProjection::derive(7, 8, 64);
        let _ = proj.encode(&[1.0; 9]);
    }
}
