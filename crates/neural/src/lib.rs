//! # factorhd-neural — the "neuro" half of the neuro-symbolic model
//!
//! The paper integrates FactorHD with a ResNet-18 feature extractor and
//! evaluates on RAVEN, CIFAR-10 and CIFAR-100 (§IV). This crate provides
//! the simulated equivalents (see DESIGN.md for the substitution rationale):
//!
//! * [`FeatureModel`] / [`SimulatedResNet18`] — a class-conditional
//!   Gaussian feature generator calibrated to published CNN accuracies.
//! * [`RandomProjection`] — the feature→hypervector encoder.
//! * [`train_prototypes`] — centroid training in HV space, including
//!   superposed-image training bundles.
//! * [`datasets`] — the real CIFAR-10/100 label taxonomies and a RAVEN
//!   panel sampler with the paper's attribute codebooks.
//! * [`CifarPipeline`] / [`RavenPipeline`] — end-to-end train → encode →
//!   factorize → score, regenerating Tables I and II.
//!
//! # Example
//!
//! ```no_run
//! use factorhd_neural::{CifarPipeline, CifarPipelineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipeline = CifarPipeline::new(CifarPipelineConfig::cifar10())?;
//! let accuracy = pipeline.evaluate(1000, 42)?;
//! println!("CIFAR-10 factorization accuracy: {:.2}%", accuracy * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
mod features;
mod pipeline;
mod projection;
mod prototypes;

pub use features::{FeatureModel, SimulatedResNet18};
pub use pipeline::{
    CifarPipeline, CifarPipelineConfig, CifarVariant, RavenPipeline, RavenPipelineConfig,
};
pub use projection::RandomProjection;
pub use prototypes::{train_prototypes, TrainConfig};
