//! End-to-end neuro-symbolic pipelines (Fig. 1(b,c)).
//!
//! These glue the simulated CNN front-end to the FactorHD symbolic layer:
//! sample image features → random-projection encode → build FactorHD
//! clauses around the *query* vector → factorize against trained prototype
//! codebooks installed in the taxonomy.
//!
//! * [`CifarPipeline`] — CIFAR-10 ("image label bound with a dummy label")
//!   and CIFAR-100 (coarse ⊙ fine two-level labels, supporting *partial*
//!   factorization of either level), including superposed-image bundles.
//! * [`RavenPipeline`] — RAVEN panels of 1–9 objects with position / color
//!   / size-type attribute codebooks, factorized as Rep-3 scenes.
//!
//! Because neural queries are *noisy* versions of their prototypes, the
//! expected factorization signal shrinks by the measured query↔prototype
//! alignment; the pipelines estimate that alignment after training and
//! scale their thresholds with it.

use crate::datasets::cifar;
use crate::datasets::raven::{RavenConfig, RavenScene, NUM_COLORS, NUM_SIZE_TYPES};
use crate::{train_prototypes, FeatureModel, RandomProjection, SimulatedResNet18, TrainConfig};
use factorhd_core::threshold::{expected_signal, noise_sigma};
use factorhd_core::{
    Encoder, FactorHdError, FactorizeConfig, Factorizer, ItemPath, Taxonomy, TaxonomyBuilder,
    ThresholdPolicy,
};
use hdc::{AccumHv, BipolarHv, Codebook};
use rand::Rng;

/// Which CIFAR dataset the pipeline models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CifarVariant {
    /// 10 flat classes; encoding binds the image clause with a dummy-label
    /// clause.
    Cifar10,
    /// 100 fine classes under 20 coarse superclasses; the network extracts
    /// coarse and fine aspects separately and both clauses bind together.
    Cifar100,
}

/// Configuration for [`CifarPipeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CifarPipelineConfig {
    /// Which dataset to model.
    pub variant: CifarVariant,
    /// Hypervector dimension.
    pub dim: usize,
    /// CNN feature dimension.
    pub feat_dim: usize,
    /// Front-end accuracy the (fine-label) feature model is calibrated to.
    pub frontend_accuracy: f64,
    /// Front-end accuracy of the coarse head (CIFAR-100 only).
    pub coarse_accuracy: f64,
    /// Training presentations per class.
    pub samples_per_class: usize,
    /// Images superposed per training presentation.
    pub train_superposition: usize,
    /// Derivation seed.
    pub seed: u64,
}

impl CifarPipelineConfig {
    /// Defaults matching the Table II CIFAR-10 setting.
    pub fn cifar10() -> Self {
        CifarPipelineConfig {
            variant: CifarVariant::Cifar10,
            dim: 4096,
            feat_dim: 64,
            frontend_accuracy: SimulatedResNet18::CIFAR10_ACCURACY,
            coarse_accuracy: SimulatedResNet18::CIFAR100_COARSE_ACCURACY,
            samples_per_class: 32,
            train_superposition: 1,
            seed: 0xC1FA_0010,
        }
    }

    /// Defaults matching the Table II CIFAR-100 setting.
    pub fn cifar100() -> Self {
        CifarPipelineConfig {
            variant: CifarVariant::Cifar100,
            dim: 4096,
            feat_dim: 64,
            frontend_accuracy: SimulatedResNet18::CIFAR100_ACCURACY,
            coarse_accuracy: SimulatedResNet18::CIFAR100_COARSE_ACCURACY,
            samples_per_class: 32,
            train_superposition: 1,
            seed: 0xC1FA_0100,
        }
    }
}

/// A trained CIFAR classification pipeline.
pub struct CifarPipeline {
    config: CifarPipelineConfig,
    taxonomy: Taxonomy,
    /// Fine-label feature head (10 or 100 classes).
    features: FeatureModel,
    /// Coarse-label feature head (CIFAR-100 only).
    coarse_features: Option<FeatureModel>,
    projection: RandomProjection,
    dummy_item: Option<BipolarHv>,
    /// Measured mean similarity of a fresh query to its own prototype.
    alignment: f64,
}

impl CifarPipeline {
    /// Builds (trains) the pipeline: calibrates the feature model(s),
    /// trains prototypes, installs them into a FactorHD taxonomy, and
    /// measures the query↔prototype alignment.
    ///
    /// # Errors
    ///
    /// Propagates taxonomy construction errors.
    pub fn new(config: CifarPipelineConfig) -> Result<Self, FactorHdError> {
        let n_classes = match config.variant {
            CifarVariant::Cifar10 => 10,
            CifarVariant::Cifar100 => cifar::CIFAR100_NUM_FINE,
        };
        let features = FeatureModel::calibrate(
            config.seed,
            n_classes,
            config.feat_dim,
            config.frontend_accuracy,
            200,
        );
        let projection = RandomProjection::derive(config.seed, config.feat_dim, config.dim);
        let prototypes = train_prototypes(
            &features,
            &projection,
            TrainConfig {
                samples_per_class: config.samples_per_class,
                superposition: config.train_superposition,
                seed: config.seed,
            },
        );
        let alignment = measure_alignment(&features, &projection, &prototypes, config.seed);

        let (taxonomy, coarse_features, dummy_item) = match config.variant {
            CifarVariant::Cifar10 => {
                let taxonomy = TaxonomyBuilder::new(config.dim)
                    .seed(config.seed)
                    .class("image", &[10])
                    .class("dummy", &[1])
                    .build()?;
                taxonomy.set_codebook(0, &[], prototypes)?;
                let dummy = taxonomy.item_hv(1, &ItemPath::top(0))?;
                (taxonomy, None, Some(dummy))
            }
            CifarVariant::Cifar100 => {
                let taxonomy = TaxonomyBuilder::new(config.dim)
                    .seed(config.seed)
                    .class("coarse", &[cifar::CIFAR100_NUM_COARSE])
                    .class("fine", &[cifar::CIFAR100_NUM_FINE])
                    .build()?;
                // The coarse head is its own (simulated) network output,
                // calibrated to the published coarse accuracy.
                let coarse = FeatureModel::calibrate(
                    config.seed ^ 0xC0A5,
                    cifar::CIFAR100_NUM_COARSE,
                    config.feat_dim,
                    config.coarse_accuracy,
                    200,
                );
                let coarse_prototypes = train_prototypes(
                    &coarse,
                    &projection,
                    TrainConfig {
                        samples_per_class: config.samples_per_class,
                        superposition: config.train_superposition,
                        seed: config.seed ^ 0xC0A5,
                    },
                );
                taxonomy.set_codebook(0, &[], coarse_prototypes)?;
                taxonomy.set_codebook(1, &[], prototypes)?;
                (taxonomy, Some(coarse), None)
            }
        };

        Ok(CifarPipeline {
            config,
            taxonomy,
            features,
            coarse_features,
            projection,
            dummy_item,
            alignment,
        })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &CifarPipelineConfig {
        &self.config
    }

    /// The underlying taxonomy (prototypes installed).
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The calibrated fine-label feature model.
    pub fn features(&self) -> &FeatureModel {
        &self.features
    }

    /// The measured mean similarity of a fresh query vector to its class
    /// prototype (scales every factorization signal in this pipeline).
    pub fn alignment(&self) -> f64 {
        self.alignment
    }

    /// Samples one image of `class` (a fine label for CIFAR-100) and
    /// encodes it into a FactorHD scene vector.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn encode_image<R: Rng + ?Sized>(
        &self,
        class: usize,
        rng: &mut R,
    ) -> Result<AccumHv, FactorHdError> {
        let encoder = Encoder::new(&self.taxonomy);
        let query = self.projection.encode(&self.features.sample(class, rng));
        let object = match self.config.variant {
            CifarVariant::Cifar10 => encoder.encode_object_with_items(&[
                Some(&query),
                Some(self.dummy_item.as_ref().expect("cifar10 has a dummy item")),
            ])?,
            CifarVariant::Cifar100 => {
                let coarse_model = self
                    .coarse_features
                    .as_ref()
                    .expect("cifar100 has a coarse head");
                let coarse_query = self
                    .projection
                    .encode(&coarse_model.sample(cifar::coarse_of(class), rng));
                encoder.encode_object_with_items(&[Some(&coarse_query), Some(&query)])?
            }
        };
        Ok(object.to_accum())
    }

    /// Samples one image of `class` (a fine label for CIFAR-100) and
    /// returns its *feature-level* hypervector: the random projection
    /// of the simulated network's feature vector, before any symbolic
    /// binding. This is the representation online prototype learning
    /// (`factorhd-learn`) bundles — bound scene encodings from
    /// [`CifarPipeline::encode_image`] do not accumulate coherently
    /// into class prototypes, feature encodings do.
    pub fn encode_features<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> AccumHv {
        let query = self.projection.encode(&self.features.sample(class, rng));
        let mut acc = AccumHv::zeros(self.config.dim);
        acc.add_bipolar(&query, 1);
        acc
    }

    /// Factorizes out the image class (CIFAR-10) or the fine class
    /// (CIFAR-100).
    ///
    /// # Errors
    ///
    /// Propagates factorization errors.
    pub fn classify(&self, hv: &AccumHv) -> Result<usize, FactorHdError> {
        let class_idx = match self.config.variant {
            CifarVariant::Cifar10 => 0,
            CifarVariant::Cifar100 => 1,
        };
        let factorizer = Factorizer::new(&self.taxonomy, FactorizeConfig::default());
        let decodes = factorizer.factorize_classes(hv, &[class_idx])?;
        Ok(decodes[0]
            .path
            .as_ref()
            .map(|p| p.indices()[0] as usize)
            .unwrap_or(usize::MAX))
    }

    /// Partially factorizes only the coarse label (CIFAR-100; the use case
    /// the paper highlights for partial factorization).
    ///
    /// # Errors
    ///
    /// [`FactorHdError::InvalidConfig`] for CIFAR-10, else factorization
    /// errors.
    pub fn classify_coarse(&self, hv: &AccumHv) -> Result<usize, FactorHdError> {
        if self.config.variant != CifarVariant::Cifar100 {
            return Err(FactorHdError::InvalidConfig(
                "coarse classification requires the CIFAR-100 variant".into(),
            ));
        }
        let factorizer = Factorizer::new(&self.taxonomy, FactorizeConfig::default());
        let decodes = factorizer.factorize_classes(hv, &[0])?;
        Ok(decodes[0]
            .path
            .as_ref()
            .map(|p| p.indices()[0] as usize)
            .unwrap_or(usize::MAX))
    }

    /// Test-set accuracy over `n_test` fresh images (fine labels for
    /// CIFAR-100).
    ///
    /// # Errors
    ///
    /// Propagates encoding/factorization errors.
    pub fn evaluate(&self, n_test: usize, seed: u64) -> Result<f64, FactorHdError> {
        let n_classes = self.features.n_classes();
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xE7A1]));
        let mut correct = 0usize;
        for t in 0..n_test {
            let class = t % n_classes;
            let hv = self.encode_image(class, &mut rng)?;
            if self.classify(&hv)? == class {
                correct += 1;
            }
        }
        Ok(correct as f64 / n_test.max(1) as f64)
    }

    /// Coarse-label accuracy (CIFAR-100 partial factorization).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CifarPipeline::classify_coarse`].
    pub fn evaluate_coarse(&self, n_test: usize, seed: u64) -> Result<f64, FactorHdError> {
        let n_classes = self.features.n_classes();
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xE7A2]));
        let mut correct = 0usize;
        for t in 0..n_test {
            let fine = t % n_classes;
            let hv = self.encode_image(fine, &mut rng)?;
            if self.classify_coarse(&hv)? == cifar::coarse_of(fine) {
                correct += 1;
            }
        }
        Ok(correct as f64 / n_test.max(1) as f64)
    }

    /// The multi-object threshold for a `k`-image bundle: half the expected
    /// signal, which is the analytic clause signal shrunk by the measured
    /// query↔prototype alignment.
    pub fn superposed_threshold(&self, k: usize) -> f64 {
        let clause_sizes = self.taxonomy.clause_sizes();
        let signal = expected_signal(&clause_sizes) * self.alignment;
        // Density-aware read noise: objects are ternary clause products, so
        // cross-object interference scales with their density, not 1.
        let sigma = noise_sigma(&clause_sizes, self.config.dim, k);
        (signal / 2.0).max(2.0 * sigma)
    }

    /// Accuracy on **superposed inference**: `k` images of distinct classes
    /// bundled into one vector, factorized as a multi-object scene; a trial
    /// succeeds when every class in the bundle is recovered (set match).
    ///
    /// # Errors
    ///
    /// Propagates encoding/factorization errors.
    pub fn evaluate_superposed(
        &self,
        k: usize,
        n_trials: usize,
        seed: u64,
    ) -> Result<f64, FactorHdError> {
        let n_classes = self.features.n_classes();
        assert!(k >= 1 && k <= n_classes, "bundle size {k} out of range");
        let class_idx = match self.config.variant {
            CifarVariant::Cifar10 => 0,
            CifarVariant::Cifar100 => 1,
        };
        // A prototype-based reconstruction of a query-based object only
        // overlaps by (1 + alignment)/2 per image clause, so the acceptance
        // bar scales accordingly.
        let recon_overlap = 0.5 * (1.0 + self.alignment);
        let factorizer = Factorizer::new(
            &self.taxonomy,
            FactorizeConfig {
                threshold: ThresholdPolicy::Fixed(self.superposed_threshold(k)),
                max_objects: k + 2,
                detect_null: false,
                accept_threshold: 0.75 * recon_overlap,
                ..FactorizeConfig::default()
            },
        );
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xE7A3]));
        let mut correct = 0usize;
        for _ in 0..n_trials {
            let mut classes: Vec<usize> = (0..n_classes).collect();
            rand::seq::SliceRandom::shuffle(&mut classes[..], &mut rng);
            classes.truncate(k);

            let mut bundle = AccumHv::zeros(self.config.dim);
            for &c in &classes {
                bundle.add_accum(&self.encode_image(c, &mut rng)?);
            }
            let decoded = factorizer.factorize_multi(&bundle)?;
            let mut found: Vec<usize> = decoded
                .objects
                .iter()
                .filter_map(|o| {
                    o.object()
                        .assignment(class_idx)
                        .map(|p| p.indices()[0] as usize)
                })
                .collect();
            found.sort_unstable();
            found.dedup();
            let mut expected = classes.clone();
            expected.sort_unstable();
            if found == expected {
                correct += 1;
            }
        }
        Ok(correct as f64 / n_trials.max(1) as f64)
    }
}

/// Mean similarity of fresh queries to their own class prototype.
fn measure_alignment(
    model: &FeatureModel,
    projection: &RandomProjection,
    prototypes: &Codebook,
    seed: u64,
) -> f64 {
    let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xA119]));
    let trials = 4 * model.n_classes();
    let mut total = 0.0;
    for t in 0..trials {
        let class = t % model.n_classes();
        let q = projection.encode(&model.sample(class, &mut rng));
        total += q.sim(prototypes.item(class));
    }
    total / trials as f64
}

/// Configuration for [`RavenPipeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RavenPipelineConfig {
    /// Hypervector dimension.
    pub dim: usize,
    /// Per-attribute extraction noise of the neural front-end, as a
    /// bit-flip probability on attribute item vectors.
    pub attr_flip_prob: f64,
    /// Derivation seed.
    pub seed: u64,
}

impl Default for RavenPipelineConfig {
    /// The Table I setting: `D = 1000` and a small front-end error.
    fn default() -> Self {
        RavenPipelineConfig {
            dim: 1000,
            attr_flip_prob: 0.02,
            seed: 0x4AE1,
        }
    }
}

/// The RAVEN factorization pipeline: three attribute codebooks (position,
/// color, size-type), noisy attribute extraction, Rep-3 factorization.
pub struct RavenPipeline {
    config: RavenPipelineConfig,
    raven_config: RavenConfig,
    taxonomy: Taxonomy,
}

impl RavenPipeline {
    /// Builds the taxonomy for one RAVEN configuration.
    ///
    /// # Errors
    ///
    /// Propagates taxonomy construction errors.
    pub fn new(
        raven_config: RavenConfig,
        config: RavenPipelineConfig,
    ) -> Result<Self, FactorHdError> {
        let taxonomy = TaxonomyBuilder::new(config.dim)
            .seed(hdc::derive_seed(&[
                config.seed,
                raven_config.num_positions() as u64,
            ]))
            .class("position", &[raven_config.num_positions()])
            .class("color", &[NUM_COLORS])
            .class("size-type", &[NUM_SIZE_TYPES])
            .build()?;
        Ok(RavenPipeline {
            config,
            raven_config,
            taxonomy,
        })
    }

    /// The underlying taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The RAVEN configuration this pipeline decodes.
    pub fn raven_config(&self) -> RavenConfig {
        self.raven_config
    }

    /// Encodes a panel: per object, the three attribute item vectors pass
    /// through the noisy front-end (bit flips), clauses are built around
    /// the noisy items, and objects bundle into the scene vector.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    ///
    /// # Panics
    ///
    /// Panics if the scene's configuration differs from the pipeline's.
    pub fn encode_scene<R: Rng + ?Sized>(
        &self,
        scene: &RavenScene,
        rng: &mut R,
    ) -> Result<AccumHv, FactorHdError> {
        assert_eq!(
            scene.config, self.raven_config,
            "scene configuration mismatch"
        );
        let encoder = Encoder::new(&self.taxonomy);
        let mut acc = AccumHv::zeros(self.config.dim);
        for obj in &scene.objects {
            let attrs = [obj.position, obj.color, obj.size_type];
            let noisy: Vec<BipolarHv> = attrs
                .iter()
                .enumerate()
                .map(|(class, &idx)| {
                    let item = self
                        .taxonomy
                        .item_hv(class, &ItemPath::top(idx))
                        .expect("attributes are in range by construction");
                    item.flip_noise(self.config.attr_flip_prob, rng)
                })
                .collect();
            let refs: Vec<Option<&BipolarHv>> = noisy.iter().map(Some).collect();
            let object_hv = encoder.encode_object_with_items(&refs)?;
            acc.add_ternary(&object_hv, 1);
        }
        Ok(acc)
    }

    /// Factorizes a panel vector back into `(position, color, size_type)`
    /// tuples.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors.
    pub fn decode_scene(&self, hv: &AccumHv) -> Result<Vec<(u16, u16, u16)>, FactorHdError> {
        let factorizer = Factorizer::new(
            &self.taxonomy,
            FactorizeConfig {
                threshold: ThresholdPolicy::Analytic {
                    n_objects: self.raven_config.max_objects().min(4),
                },
                max_objects: self.raven_config.max_objects() + 2,
                detect_null: false,
                ..FactorizeConfig::default()
            },
        );
        let decoded = factorizer.factorize_multi(hv)?;
        Ok(decoded
            .objects
            .iter()
            .filter_map(|o| {
                let spec = o.object();
                match (spec.assignment(0), spec.assignment(1), spec.assignment(2)) {
                    (Some(p), Some(c), Some(s)) => {
                        Some((p.indices()[0], c.indices()[0], s.indices()[0]))
                    }
                    _ => None,
                }
            })
            .collect())
    }

    /// Exact-panel accuracy over `n_scenes` sampled panels: a trial
    /// succeeds when the decoded object multiset equals the ground truth.
    ///
    /// # Errors
    ///
    /// Propagates encoding/factorization errors.
    pub fn evaluate(&self, n_scenes: usize, seed: u64) -> Result<f64, FactorHdError> {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0x4AE2]));
        let mut correct = 0usize;
        for _ in 0..n_scenes {
            let scene = RavenScene::sample(self.raven_config, &mut rng);
            let hv = self.encode_scene(&scene, &mut rng)?;
            let mut decoded = self.decode_scene(&hv)?;
            let mut truth: Vec<(u16, u16, u16)> = scene
                .objects
                .iter()
                .map(|o| (o.position, o.color, o.size_type))
                .collect();
            decoded.sort_unstable();
            truth.sort_unstable();
            if decoded == truth {
                correct += 1;
            }
        }
        Ok(correct as f64 / n_scenes.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cifar10_config() -> CifarPipelineConfig {
        CifarPipelineConfig {
            samples_per_class: 24,
            ..CifarPipelineConfig::cifar10()
        }
    }

    #[test]
    fn cifar10_pipeline_classifies_well() {
        let pipeline = CifarPipeline::new(small_cifar10_config()).unwrap();
        let acc = pipeline.evaluate(200, 1).unwrap();
        assert!(acc > 0.85, "CIFAR-10 pipeline accuracy {acc}");
    }

    #[test]
    fn cifar10_accuracy_tracks_frontend() {
        // The symbolic layer should lose only a few points relative to the
        // simulated CNN front-end (paper: < 3% on CIFAR-10 at high D).
        let pipeline = CifarPipeline::new(small_cifar10_config()).unwrap();
        let frontend = pipeline.features().reference_accuracy(100, 5);
        let symbolic = pipeline.evaluate(300, 2).unwrap();
        assert!(
            frontend - symbolic < 0.1,
            "symbolic loss too large: frontend {frontend}, symbolic {symbolic}"
        );
    }

    #[test]
    fn alignment_is_meaningful() {
        let pipeline = CifarPipeline::new(small_cifar10_config()).unwrap();
        let a = pipeline.alignment();
        assert!(a > 0.1 && a < 0.9, "alignment {a}");
        // Threshold scales below the alignment-shrunk signal.
        let th = pipeline.superposed_threshold(2);
        assert!(th > 0.0 && th < 0.25 * a + 1e-9, "threshold {th}");
    }

    #[test]
    fn cifar10_superposed_inference_recovers_classes() {
        let pipeline = CifarPipeline::new(small_cifar10_config()).unwrap();
        let acc = pipeline.evaluate_superposed(2, 100, 3).unwrap();
        // Chance for an exact 2-of-10 set match is 1/45 ≈ 0.022. The true
        // rate at this operating point is ≈ 0.45 (limited by the measured
        // query↔prototype alignment, not by the factorizer: a direct
        // SceneQuery evidence scan over the bundle scores the same), so
        // 0.30 is ≈ 3σ below the mean at 100 trials — robust to RNG
        // stream changes while still far above chance.
        assert!(acc > 0.3, "superposed (k=2) accuracy {acc}");
    }

    #[test]
    fn cifar100_fine_and_coarse_accuracy() {
        let config = CifarPipelineConfig {
            samples_per_class: 24,
            ..CifarPipelineConfig::cifar100()
        };
        let pipeline = CifarPipeline::new(config).unwrap();
        let fine = pipeline.evaluate(200, 4).unwrap();
        let coarse = pipeline.evaluate_coarse(200, 4).unwrap();
        assert!(fine > 0.45, "fine accuracy {fine}");
        assert!(coarse > 0.6, "coarse accuracy {coarse}");
    }

    #[test]
    fn cifar10_rejects_coarse_queries() {
        let pipeline = CifarPipeline::new(small_cifar10_config()).unwrap();
        let mut rng = hdc::rng_from_seed(1);
        let hv = pipeline.encode_image(0, &mut rng).unwrap();
        assert!(pipeline.classify_coarse(&hv).is_err());
    }

    #[test]
    fn raven_center_panels_decode() {
        let pipeline =
            RavenPipeline::new(RavenConfig::Center, RavenPipelineConfig::default()).unwrap();
        let acc = pipeline.evaluate(40, 5).unwrap();
        assert!(acc > 0.85, "RAVEN Center accuracy {acc}");
    }

    #[test]
    fn raven_two_object_configs_decode() {
        let pipeline =
            RavenPipeline::new(RavenConfig::LeftRight, RavenPipelineConfig::default()).unwrap();
        let acc = pipeline.evaluate(30, 6).unwrap();
        assert!(acc > 0.6, "RAVEN L-R accuracy {acc}");
    }

    #[test]
    fn raven_scene_roundtrip_without_noise() {
        let config = RavenPipelineConfig {
            attr_flip_prob: 0.0,
            dim: 2048,
            ..RavenPipelineConfig::default()
        };
        let pipeline = RavenPipeline::new(RavenConfig::Grid2x2, config).unwrap();
        let mut rng = hdc::rng_from_seed(7);
        let scene = RavenScene::sample_with_count(RavenConfig::Grid2x2, 2, &mut rng);
        let hv = pipeline.encode_scene(&scene, &mut rng).unwrap();
        let mut decoded = pipeline.decode_scene(&hv).unwrap();
        let mut truth: Vec<(u16, u16, u16)> = scene
            .objects
            .iter()
            .map(|o| (o.position, o.color, o.size_type))
            .collect();
        decoded.sort_unstable();
        truth.sort_unstable();
        assert_eq!(decoded, truth);
    }
}
