//! The multi-model registry: named models, loaded and hot-swapped from
//! `.fhd` artifacts at runtime, served through the typed op API.
//!
//! A [`ModelRegistry`] maps [`ModelId`]s to [`ModelState`]s behind
//! generation-stamped handles. Installing over an existing id is a
//! **hot swap**: the registry's clock advances and new lookups see the
//! new state, while in-flight work keeps its [`ModelHandle`]'s `Arc` to
//! the old state alive until it finishes — no lock is held during
//! serving, so a swap never blocks or corrupts a running batch.

use crate::metrics::{self, MetricsSnapshot};
use crate::ops::{AnyOp, AnyOutput, Op, OpKind};
use crate::plan::execute_batch_planned;
use crate::{EngineConfig, EngineError, ModelState};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The name of a registered model — a cheap-to-clone interned string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(Arc<str>);

impl ModelId {
    /// Creates an id from any string-like value.
    pub fn new(id: impl AsRef<str>) -> Self {
        ModelId(Arc::from(id.as_ref()))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ModelId {
    fn from(id: &str) -> Self {
        ModelId::new(id)
    }
}

impl From<String> for ModelId {
    fn from(id: String) -> Self {
        ModelId::new(id)
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generation-stamped reference to one registered model.
///
/// The handle owns an `Arc` to the state it resolved, so it keeps
/// serving that exact model even if the registry hot-swaps the id —
/// in-flight batches finish on the model they started on. Compare
/// [`ModelHandle::generation`] against
/// [`ModelRegistry::generation_of`] to detect that a newer model has
/// been installed.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    id: ModelId,
    state: Arc<ModelState>,
    generation: u64,
}

impl ModelHandle {
    /// The id this handle resolved.
    pub fn id(&self) -> &ModelId {
        &self.id
    }

    /// The resolved model state.
    pub fn state(&self) -> &ModelState {
        &self.state
    }

    /// The resolved state's shared pointer (e.g. to build a
    /// [`crate::FactorEngine`] pinned to this generation).
    pub fn state_arc(&self) -> &Arc<ModelState> {
        &self.state
    }

    /// The registry generation at which this handle's state was
    /// installed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Runs a typed op against this handle's (possibly superseded) state.
    ///
    /// # Errors
    ///
    /// The conditions of [`Op::run`].
    pub fn run<O: Op>(&self, op: &O) -> Result<O::Output, EngineError> {
        let kind = op.kind();
        metrics::record_submitted(kind, 1);
        let started = metrics::now();
        let result = op.run(&self.state);
        if let Some(started) = started {
            metrics::record_op_nanos(kind, started.elapsed().as_nanos() as u64);
        }
        metrics::record_outcomes(kind, result.is_ok() as u64, result.is_err() as u64);
        metrics::record_model_ops(self.generation, 1);
        match kind {
            OpKind::Train | OpKind::Retrain => {
                metrics::record_model_train_ops(self.generation, 1);
            }
            OpKind::Classify => metrics::record_model_classify_ops(self.generation, 1),
            _ => {}
        }
        result
    }
}

/// One row of [`ModelRegistry::models_info`]: a registered model's name
/// and the generation currently installed under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The model's registered id.
    pub name: String,
    /// The generation stamp of the currently-installed state.
    pub generation: u64,
}

struct Entry {
    state: Arc<ModelState>,
    generation: u64,
}

/// Named, hot-swappable models served through the typed op API.
///
/// ```
/// use factorhd_core::TaxonomyBuilder;
/// use factorhd_engine::{EncodeScene, EngineConfig, ModelRegistry, ModelState};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = ModelRegistry::new();
/// let taxonomy = TaxonomyBuilder::new(512).class("shape", &[4]).build()?;
/// registry.install("shapes", ModelState::new(taxonomy, EngineConfig::default())?);
///
/// let mut rng = hdc::rng_from_seed(3);
/// let scene = registry.get("shapes")?.state().taxonomy().sample_scene(1, true, &mut rng);
/// let hv = registry.run("shapes", &EncodeScene { scene })?;
/// assert_eq!(hv.dim(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<ModelId, Entry>>,
    clock: AtomicU64,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Installs (or hot-swaps) `state` under `id`, returning the new
    /// generation. Handles resolved before the swap keep serving the old
    /// state; lookups after it see the new one.
    pub fn install(&self, id: impl Into<ModelId>, state: ModelState) -> u64 {
        self.install_shared(id, Arc::new(state))
    }

    /// [`ModelRegistry::install`] for an already-shared state.
    pub fn install_shared(&self, id: impl Into<ModelId>, state: Arc<ModelState>) -> u64 {
        let id = id.into();
        // Stamp and insert under the same write lock: concurrent installs
        // of one id must commit in generation order, or `generation_of`
        // could move backwards while an older state wins the slot.
        let mut guard = self.models.write();
        let generation = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        guard.insert(id, Entry { state, generation });
        generation
    }

    /// Loads a `.fhd` artifact at `path` and installs it under `id`.
    ///
    /// # Errors
    ///
    /// The conditions of [`ModelState::load`]; on error the registry is
    /// unchanged (a failed load never evicts the model it would have
    /// replaced).
    pub fn load(
        &self,
        id: impl Into<ModelId>,
        path: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<u64, EngineError> {
        Ok(self.install(id, ModelState::load(path, config)?))
    }

    /// Loads `.fhd` bytes from `reader` and installs them under `id`.
    ///
    /// # Errors
    ///
    /// The conditions of [`ModelState::load_from`]; on error the registry
    /// is unchanged.
    pub fn load_from<R: Read>(
        &self,
        id: impl Into<ModelId>,
        reader: &mut R,
        config: EngineConfig,
    ) -> Result<u64, EngineError> {
        Ok(self.install(id, ModelState::load_from(reader, config)?))
    }

    /// Removes `id`, returning whether it was present. In-flight handles
    /// keep their state alive; only new lookups fail.
    pub fn remove(&self, id: &str) -> bool {
        self.models.write().remove(&ModelId::new(id)).is_some()
    }

    /// Resolves `id` to a generation-stamped handle.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`] when `id` is not installed.
    pub fn get(&self, id: &str) -> Result<ModelHandle, EngineError> {
        let key = ModelId::new(id);
        let guard = self.models.read();
        match guard.get(&key) {
            Some(entry) => Ok(ModelHandle {
                id: key,
                state: Arc::clone(&entry.state),
                generation: entry.generation,
            }),
            None => {
                let mut registered: Vec<String> =
                    guard.keys().map(|k| k.as_str().to_owned()).collect();
                registered.sort();
                Err(EngineError::UnknownModel {
                    name: id.to_owned(),
                    registered,
                })
            }
        }
    }

    /// Re-snapshots `id`'s staged prototypes and hot-swaps the published
    /// state, returning the generation now installed. Readers keep
    /// scanning the old snapshot until the swap commits — they never
    /// block on an in-progress snapshot build. If a concurrent install
    /// replaced the model while the snapshot was being built, the newer
    /// install wins and its generation is returned unchanged.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`] when `id` is not installed,
    /// [`EngineError::NotTrainable`] when it has no learner, or the
    /// conditions of building a snapshot from the staged model.
    pub fn publish_prototypes(&self, id: &str) -> Result<u64, EngineError> {
        // Build the snapshot outside the write lock: binarizing every
        // accumulator is the expensive part and must not stall readers.
        let handle = self.get(id)?;
        let published = match handle.state().publish_prototypes() {
            None => return Err(EngineError::NotTrainable),
            Some(result) => Arc::new(result?),
        };
        let mut guard = self.models.write();
        match guard.get_mut(&ModelId::new(id)) {
            Some(entry) if Arc::ptr_eq(&entry.state, handle.state_arc()) => {
                let generation = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                entry.state = published;
                entry.generation = generation;
                Ok(generation)
            }
            // A concurrent install won the slot while we snapshotted;
            // the learner is shared, so its next publish will carry any
            // training this snapshot saw — drop ours.
            Some(entry) => Ok(entry.generation),
            None => {
                let mut registered: Vec<String> =
                    guard.keys().map(|k| k.as_str().to_owned()).collect();
                registered.sort();
                Err(EngineError::UnknownModel {
                    name: id.to_owned(),
                    registered,
                })
            }
        }
    }

    /// The generation currently installed under `id`, if any.
    pub fn generation_of(&self, id: &str) -> Option<u64> {
        self.models
            .read()
            .get(&ModelId::new(id))
            .map(|e| e.generation)
    }

    /// The installed ids, sorted.
    pub fn ids(&self) -> Vec<ModelId> {
        let mut ids: Vec<ModelId> = self.models.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Every installed model's name and current generation, sorted by
    /// name — the payload of the wire protocol's `ListModels` op.
    pub fn models_info(&self) -> Vec<ModelInfo> {
        let mut infos: Vec<ModelInfo> = self
            .models
            .read()
            .iter()
            .map(|(id, entry)| ModelInfo {
                name: id.as_str().to_owned(),
                generation: entry.generation,
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of installed models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// `true` when no model is installed.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }

    /// Runs one typed op against the model currently installed under
    /// `id`.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownModel`], or the conditions of [`Op::run`].
    ///
    /// A successful `Train`/`Retrain` auto-publishes a fresh prototype
    /// snapshot under a new generation, so classification lookups that
    /// follow the ack observe the training.
    pub fn run<O: Op>(&self, id: &str, op: &O) -> Result<O::Output, EngineError> {
        let result = self.get(id)?.run(op);
        if result.is_ok() && matches!(op.kind(), OpKind::Train | OpKind::Retrain) {
            // Best-effort: a concurrent remove between run and publish
            // only skips the snapshot, it never fails the op itself.
            let _ = self.publish_prototypes(id);
        }
        result
    }

    /// Executes a heterogeneous multi-model batch: ops are grouped by
    /// `(model, op kind)` so same-shape work scans each model's packed
    /// shards contiguously, then fanned out across the worker pool.
    /// Results come back in input order, **bit-identical** to
    /// [`ModelRegistry::execute_sequential`]. Model resolution is
    /// snapshotted once at entry, so a hot swap mid-batch cannot mix
    /// generations within the batch; ops naming an unknown model fail
    /// individually with [`EngineError::UnknownModel`].
    pub fn execute_batch(&self, ops: &[(ModelId, AnyOp)]) -> Vec<Result<AnyOutput, EngineError>> {
        // Snapshot every distinct id under one read lock.
        let mut slot_of: HashMap<&ModelId, usize> = HashMap::new();
        let mut states: Vec<Option<Arc<ModelState>>> = Vec::new();
        let mut slot_names: Vec<String> = Vec::new();
        let mut slot_generations: Vec<Option<u64>> = Vec::new();
        let mut registered: Vec<String> = Vec::new();
        {
            let guard = self.models.read();
            for (id, _) in ops {
                if !slot_of.contains_key(id) {
                    slot_of.insert(id, states.len());
                    let entry = guard.get(id);
                    states.push(entry.map(|e| Arc::clone(&e.state)));
                    slot_generations.push(entry.map(|e| e.generation));
                    slot_names.push(id.to_string());
                }
            }
            // Only unknown-model errors name the registered set; snapshot
            // it under the same lock so the error list matches the batch's
            // resolution view.
            if states.iter().any(|s| s.is_none()) {
                registered = guard.keys().map(|k| k.as_str().to_owned()).collect();
                registered.sort();
            }
        }
        let tagged: Vec<(usize, &AnyOp)> = ops.iter().map(|(id, op)| (slot_of[id], op)).collect();
        if metrics::metrics_recording() {
            let mut counts = vec![(0u64, 0u64, 0u64); states.len()];
            for &(slot, op) in &tagged {
                let entry = &mut counts[slot];
                entry.0 += 1;
                match op.kind() {
                    OpKind::Train | OpKind::Retrain => entry.1 += 1,
                    OpKind::Classify => entry.2 += 1,
                    _ => {}
                }
            }
            for (slot, (total, train, classify)) in counts.into_iter().enumerate() {
                if let Some(generation) = slot_generations[slot] {
                    metrics::record_model_ops(generation, total);
                    if train > 0 {
                        metrics::record_model_train_ops(generation, train);
                    }
                    if classify > 0 {
                        metrics::record_model_classify_ops(generation, classify);
                    }
                }
            }
        }
        let results = execute_batch_planned(&tagged, &states, &slot_names, &registered);
        // Auto-publish: every model that absorbed at least one successful
        // Train/Retrain gets a fresh snapshot under a new generation.
        let mut trained = vec![false; states.len()];
        for (&(slot, op), result) in tagged.iter().zip(&results) {
            if matches!(op.kind(), OpKind::Train | OpKind::Retrain) && result.is_ok() {
                trained[slot] = true;
            }
        }
        for (slot, trained) in trained.into_iter().enumerate() {
            if trained {
                let _ = self.publish_prototypes(&slot_names[slot]);
            }
        }
        results
    }

    /// The determinism reference for [`ModelRegistry::execute_batch`]:
    /// one op at a time, each resolved and run on the calling thread.
    pub fn execute_sequential(
        &self,
        ops: &[(ModelId, AnyOp)],
    ) -> Vec<Result<AnyOutput, EngineError>> {
        ops.iter()
            .map(|(id, op)| self.run(id.as_str(), op))
            .collect()
    }

    /// A copy-out of the process-global telemetry tables; the `models`
    /// rows are keyed by the generation stamps this registry issued. See
    /// [`crate::metrics`] and docs/OBSERVABILITY.md.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        metrics::snapshot()
    }
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.ids())
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FactorizeRep2, FactorizeRep3};
    use factorhd_core::{Encoder, Scene, Taxonomy, TaxonomyBuilder};

    fn taxonomy(seed: u64) -> Taxonomy {
        TaxonomyBuilder::new(1024)
            .seed(seed)
            .class("animal", &[8, 4])
            .class("color", &[8])
            .build()
            .expect("valid taxonomy")
    }

    fn state(seed: u64) -> ModelState {
        ModelState::new(taxonomy(seed), EngineConfig::default()).expect("valid config")
    }

    #[test]
    fn install_get_remove_round_trip() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        let gen1 = registry.install("a", state(1));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.generation_of("a"), Some(gen1));
        assert_eq!(registry.get("a").unwrap().generation(), gen1);
        assert!(matches!(
            registry.get("missing"),
            Err(EngineError::UnknownModel { name, registered })
                if name == "missing" && registered == vec!["a".to_owned()]
        ));
        assert!(registry.remove("a"));
        assert!(!registry.remove("a"));
        assert!(registry.get("a").is_err());
    }

    #[test]
    fn hot_swap_bumps_generation_and_preserves_old_handles() {
        let registry = ModelRegistry::new();
        let gen1 = registry.install("m", state(10));
        let handle = registry.get("m").expect("installed");
        let old_seed = handle.state().taxonomy().seed();

        let gen2 = registry.install("m", state(11));
        assert!(gen2 > gen1);
        assert_eq!(registry.generation_of("m"), Some(gen2));
        // The pre-swap handle still serves the model it resolved…
        assert_eq!(handle.generation(), gen1);
        assert_eq!(handle.state().taxonomy().seed(), old_seed);
        // …and a fresh lookup sees the new one.
        let fresh = registry.get("m").expect("installed");
        assert_eq!(fresh.state().taxonomy().seed(), 11);
    }

    #[test]
    fn multi_model_batch_matches_sequential_and_isolates_unknowns() {
        let registry = ModelRegistry::new();
        registry.install("left", state(20));
        registry.install("right", state(21));

        let mut ops: Vec<(ModelId, AnyOp)> = Vec::new();
        for (which, seed) in [("left", 30u64), ("right", 31), ("left", 32), ("gone", 33)] {
            let model_taxonomy = taxonomy(if which == "right" { 21 } else { 20 });
            let encoder = Encoder::new(&model_taxonomy);
            let mut rng = hdc::rng_from_seed(seed);
            let object = model_taxonomy.sample_object(&mut rng);
            let hv = encoder.encode_scene(&Scene::single(object)).unwrap();
            ops.push((
                ModelId::new(which),
                AnyOp::Rep2(FactorizeRep2 { scene: hv }),
            ));
        }
        let mut rng = hdc::rng_from_seed(34);
        let scene_taxonomy = taxonomy(21);
        let scene = scene_taxonomy.sample_scene(2, true, &mut rng);
        let hv = Encoder::new(&scene_taxonomy).encode_scene(&scene).unwrap();
        ops.push((
            ModelId::new("right"),
            AnyOp::Rep3(FactorizeRep3 { scene: hv }),
        ));

        let batched = registry.execute_batch(&ops);
        let sequential = registry.execute_sequential(&ops);
        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            match (b, s) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "op {i}"),
                (
                    Err(EngineError::UnknownModel {
                        name: x,
                        registered: rx,
                    }),
                    Err(EngineError::UnknownModel { name: y, .. }),
                ) => {
                    assert_eq!(x, y, "op {i}");
                    assert_eq!(x, "gone");
                    assert_eq!(rx, &["left".to_owned(), "right".to_owned()]);
                }
                other => panic!("op {i}: mismatched results {other:?}"),
            }
        }
        // Exactly the op routed at the missing model failed.
        assert!(batched[3].is_err());
        assert_eq!(batched.iter().filter(|r| r.is_err()).count(), 1);
    }

    #[test]
    fn models_info_lists_names_and_generations_sorted() {
        let registry = ModelRegistry::new();
        let gen_b = registry.install("beta", state(60));
        let gen_a = registry.install("alpha", state(61));
        assert_eq!(
            registry.models_info(),
            vec![
                ModelInfo {
                    name: "alpha".to_owned(),
                    generation: gen_a
                },
                ModelInfo {
                    name: "beta".to_owned(),
                    generation: gen_b
                },
            ]
        );
    }

    #[test]
    fn train_auto_publishes_a_fresh_snapshot_generation() {
        use crate::ops::{Classify, Train};
        use factorhd_learn::LearnConfig;

        let registry = ModelRegistry::new();
        let learnable = ModelState::new_learnable(
            taxonomy(70),
            EngineConfig::default(),
            LearnConfig::new(2, 64),
        )
        .expect("valid learnable state");
        let gen1 = registry.install("tenant", learnable);

        let mut rng = hdc::rng_from_seed(71);
        let mut example = hdc::AccumHv::zeros(64);
        example.add_bipolar(&hdc::BipolarHv::random(64, &mut rng), 1);
        let ack = registry
            .run(
                "tenant",
                &Train {
                    class: 1,
                    sample: 0,
                    example: example.clone(),
                    retain: true,
                },
            )
            .expect("train succeeds");
        assert_eq!(ack.class, 1);
        // The successful Train hot-swapped a republished snapshot…
        let gen2 = registry.generation_of("tenant").expect("still installed");
        assert!(gen2 > gen1);
        // …and a fresh Classify sees the trained prototype.
        let classified = registry
            .run(
                "tenant",
                &Classify {
                    query: example,
                    top_k: 1,
                },
            )
            .expect("classify succeeds");
        assert_eq!(classified.hits[0].class, 1);

        // Untrainable models reject publishing with a typed error.
        registry.install("plain", state(72));
        assert!(matches!(
            registry.publish_prototypes("plain"),
            Err(EngineError::NotTrainable)
        ));
    }

    #[test]
    fn failed_load_leaves_registry_unchanged() {
        let registry = ModelRegistry::new();
        registry.install("m", state(40));
        let before = registry.generation_of("m");
        let garbage = b"not an artifact".to_vec();
        assert!(registry
            .load_from("m", &mut &garbage[..], EngineConfig::default())
            .is_err());
        assert_eq!(registry.generation_of("m"), before);
    }
}
