//! Per-model serving state: one taxonomy plus everything the engine
//! memoizes for it, bundled so registries and engines can share it.

use crate::cache::{CacheStats, ReconCache};
use crate::{artifact, EngineError};
use factorhd_core::{build_unbind_keys, FactorizeConfig, Factorizer, Taxonomy};
use factorhd_learn::{LearnConfig, Learner, PrototypeModel, PrototypeSnapshot};
use hdc::BipolarHv;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Cap on [`EngineConfig::reconstruction_capacity`] (largest accepted
/// value): anything beyond 2^24 objects would pin gigabytes of
/// hypervectors — treat it as a typo.
const MAX_RECONSTRUCTION_CAPACITY: usize = 1 << 24;
/// Cap on [`EngineConfig::batch_chunk`]: chunks beyond 2^16 ops defeat
/// the planner's load balancing entirely.
const MAX_BATCH_CHUNK: usize = 1 << 16;

/// Tuning knobs for [`ModelState`] / [`crate::FactorEngine`].
///
/// Constructors validate the configuration up front
/// ([`EngineConfig::validate`]): zero or absurd sizes are rejected with a
/// typed [`EngineError::InvalidConfig`] instead of silently misbehaving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Factorization configuration applied to every request.
    pub factorize: FactorizeConfig,
    /// Capacity (in objects) of the Rep-3 reconstruction memo; 0 disables
    /// it.
    pub reconstruction_capacity: usize,
    /// The **minimum** number of groupable ops the batch planner hands to
    /// one grouped-scan task (Rep-1/Rep-2 level-1 scans amortize codebook
    /// traversal across the chunk). The actual chunk size is adaptive —
    /// the planner targets about two tasks per worker-pool lane and never
    /// goes below this floor — so this knob bounds amortization, not the
    /// task count. Must be ≥ 1.
    ///
    /// [`EngineConfig::validate`] is the single point of truth for that
    /// invariant: every execution path consumes the value unclamped, so an
    /// unvalidated 0 here would panic in `slice::chunks` rather than be
    /// silently corrected.
    pub batch_chunk: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            factorize: FactorizeConfig::default(),
            reconstruction_capacity: 1024,
            batch_chunk: 8,
        }
    }
}

impl EngineConfig {
    /// Checks the configuration for zero/absurd sizes.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] naming the offending field when a
    /// value is zero where a zero would dead-lock or no-op the engine
    /// (`batch_chunk`, `factorize.max_objects`, `factorize.beam_width`,
    /// `factorize.max_combinations`, `factorize.refine_width`), beyond a
    /// sanity cap (`reconstruction_capacity`, `batch_chunk`), or not
    /// finite (`factorize.accept_threshold`).
    pub fn validate(&self) -> Result<(), EngineError> {
        let invalid = |what: String| Err(EngineError::InvalidConfig(what));
        if self.batch_chunk == 0 {
            return invalid("batch_chunk must be at least 1".into());
        }
        if self.batch_chunk > MAX_BATCH_CHUNK {
            return invalid(format!(
                "batch_chunk {} exceeds the cap {MAX_BATCH_CHUNK}",
                self.batch_chunk
            ));
        }
        if self.reconstruction_capacity > MAX_RECONSTRUCTION_CAPACITY {
            return invalid(format!(
                "reconstruction_capacity {} exceeds the cap {MAX_RECONSTRUCTION_CAPACITY}",
                self.reconstruction_capacity
            ));
        }
        if self.factorize.max_objects == 0 {
            return invalid("factorize.max_objects must be at least 1".into());
        }
        if self.factorize.beam_width == 0 {
            return invalid("factorize.beam_width must be at least 1".into());
        }
        if self.factorize.max_combinations == 0 {
            return invalid("factorize.max_combinations must be at least 1".into());
        }
        if self.factorize.refine_width == 0 {
            return invalid("factorize.refine_width must be at least 1".into());
        }
        if !self.factorize.accept_threshold.is_finite() {
            return invalid(format!(
                "factorize.accept_threshold {} is not finite",
                self.factorize.accept_threshold
            ));
        }
        Ok(())
    }
}

/// One served model: a [`Taxonomy`] bundled with its memoized parts —
/// label-elimination masks, the Rep-3 reconstruction memo, and the
/// (lazily shared) codebooks, clauses, and packed shard tables living
/// inside the taxonomy.
///
/// A `ModelState` is what [`crate::Op`]s run against and what a
/// [`crate::ModelRegistry`] hands out behind `Arc`s: hot-swapping a model
/// installs a fresh `ModelState` while in-flight batches keep their clone
/// of the old one alive until they finish.
pub struct ModelState {
    taxonomy: Arc<Taxonomy>,
    config: EngineConfig,
    unbind_keys: Arc<Vec<BipolarHv>>,
    reconstruction: Arc<ReconCache>,
    /// The staging prototype model `Train`/`Retrain` ops mutate; `None`
    /// on read-only models. Shared across hot-swap publishes so staged
    /// examples survive snapshot installs.
    learner: Option<Arc<Learner>>,
    /// The published classification snapshot `Classify` ops read.
    /// Immutable — publishing installs a whole new `ModelState`.
    prototypes: Option<Arc<PrototypeSnapshot>>,
}

impl ModelState {
    /// Builds the serving state for `taxonomy`, paying the per-model
    /// setup (label-elimination masks, empty reconstruction memo) once.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when `config` fails
    /// [`EngineConfig::validate`].
    pub fn new(taxonomy: Taxonomy, config: EngineConfig) -> Result<Self, EngineError> {
        ModelState::from_arc(Arc::new(taxonomy), config)
    }

    /// [`ModelState::new`] over an already-shared taxonomy.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when `config` fails
    /// [`EngineConfig::validate`].
    pub fn from_arc(taxonomy: Arc<Taxonomy>, config: EngineConfig) -> Result<Self, EngineError> {
        config.validate()?;
        let unbind_keys = Arc::new(build_unbind_keys(&taxonomy));
        let reconstruction = Arc::new(ReconCache::new(config.reconstruction_capacity));
        let state = ModelState {
            taxonomy,
            config,
            unbind_keys,
            reconstruction,
            learner: None,
            prototypes: None,
        };
        state.warm_scan_tables();
        Ok(state)
    }

    /// [`ModelState::new`] plus an empty online-learning model: `Train`
    /// / `Retrain` / `Classify` ops become available, with the initial
    /// published snapshot taken from the empty prototypes.
    ///
    /// The prototype dimensionality (`learn.dim`) is independent of the
    /// taxonomy's — classification queries are arbitrary encoded
    /// examples, not scene vectors.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when `config` fails validation;
    /// [`EngineError::Learn`] when `learn` does.
    pub fn new_learnable(
        taxonomy: Taxonomy,
        config: EngineConfig,
        learn: LearnConfig,
    ) -> Result<Self, EngineError> {
        let learner = Arc::new(Learner::new(learn)?);
        ModelState::with_learner(Arc::new(taxonomy), config, learner)
    }

    /// [`ModelState::from_arc`] with an existing learner attached; the
    /// published snapshot is taken from the learner's current staging
    /// state. This is the publish path: the registry re-wraps the same
    /// shared learner with a fresh snapshot.
    pub(crate) fn with_learner(
        taxonomy: Arc<Taxonomy>,
        config: EngineConfig,
        learner: Arc<Learner>,
    ) -> Result<Self, EngineError> {
        let snapshot = Arc::new(learner.snapshot()?);
        let mut state = ModelState::from_arc(taxonomy, config)?;
        state.learner = Some(learner);
        state.prototypes = Some(snapshot);
        Ok(state)
    }

    /// A new `ModelState` sharing every memoized part of this one but
    /// carrying a *fresh* snapshot of the learner's staging prototypes
    /// — the value the registry installs on publish. `None` when the
    /// model has no learner.
    pub(crate) fn publish_prototypes(&self) -> Option<Result<ModelState, EngineError>> {
        let learner = self.learner.as_ref()?;
        let snapshot = match learner.snapshot() {
            Ok(snapshot) => Arc::new(snapshot),
            Err(e) => return Some(Err(EngineError::Learn(e))),
        };
        Some(Ok(ModelState {
            taxonomy: Arc::clone(&self.taxonomy),
            config: self.config,
            unbind_keys: Arc::clone(&self.unbind_keys),
            reconstruction: Arc::clone(&self.reconstruction),
            learner: Some(Arc::clone(learner)),
            prototypes: Some(snapshot),
        }))
    }

    /// Primes the packed scan tables of every top-level codebook —
    /// the tables every Rep-1/Rep-2 level-1 scan and every Rep-3
    /// label-elimination pass hits first — so the first planned batch
    /// starts on warm word tables instead of paying lazy builds on the
    /// serving path. Subclass codebooks stay lazy (their population is
    /// workload-dependent), and `.fhd`-installed override codebooks
    /// arrive pre-primed from the artifact loader. Called on
    /// construction; results are unaffected (the tables are
    /// bit-identical to what lazy building would produce).
    fn warm_scan_tables(&self) {
        for class in 0..self.taxonomy.num_classes() {
            // Structurally infallible for in-range classes; skip
            // defensively rather than fail model construction.
            if let Ok(codebook) = self.taxonomy.codebook(class, &[]) {
                codebook.packed_view();
            }
        }
    }

    /// Loads a model from a `.fhd` artifact at `path`. Version-3
    /// artifacts carrying trained prototypes come back learnable (the
    /// replay buffer is not persisted; retraining restarts from an
    /// empty retained set).
    ///
    /// # Errors
    ///
    /// The conditions of [`artifact::load_model`] and
    /// [`EngineConfig::validate`].
    pub fn load<P: AsRef<Path>>(path: P, config: EngineConfig) -> Result<Self, EngineError> {
        let (taxonomy, prototypes) = artifact::load_model(path)?;
        ModelState::from_loaded(taxonomy, prototypes, config)
    }

    /// Loads a model from `.fhd` bytes supplied by `reader`; see
    /// [`ModelState::load`].
    ///
    /// # Errors
    ///
    /// The conditions of [`artifact::read_model`] and
    /// [`EngineConfig::validate`].
    pub fn load_from<R: Read>(reader: &mut R, config: EngineConfig) -> Result<Self, EngineError> {
        let (taxonomy, prototypes) = artifact::read_model(reader)?;
        ModelState::from_loaded(taxonomy, prototypes, config)
    }

    fn from_loaded(
        taxonomy: Taxonomy,
        prototypes: Option<PrototypeModel>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        match prototypes {
            None => ModelState::new(taxonomy, config),
            Some(model) => {
                let learner = Arc::new(Learner::from_model(model));
                ModelState::with_learner(Arc::new(taxonomy), config, learner)
            }
        }
    }

    /// Saves the model as a `.fhd` artifact at `path`, including the
    /// staging prototypes when the model is learnable.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] on filesystem failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        let staged = self.staged_prototypes();
        artifact::save_model(path, &self.taxonomy, staged.as_ref())
    }

    /// Writes the model as `.fhd` bytes to `writer`, including the
    /// staging prototypes when the model is learnable.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] on write failure.
    pub fn save_to<W: Write>(&self, writer: &mut W) -> Result<(), EngineError> {
        let staged = self.staged_prototypes();
        artifact::write_model(writer, &self.taxonomy, staged.as_ref())
    }

    /// A point-in-time clone of the staging prototype model (one lock
    /// acquisition), `None` on read-only models.
    fn staged_prototypes(&self) -> Option<PrototypeModel> {
        self.learner
            .as_ref()
            .map(|learner| learner.with_model(|m| m.clone()))
    }

    /// The taxonomy this model serves.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Usage counters of the Rep-3 reconstruction memo.
    pub fn reconstruction_stats(&self) -> CacheStats {
        self.reconstruction.stats()
    }

    /// The staging learner `Train`/`Retrain` ops mutate, `None` on
    /// read-only models.
    pub fn learner(&self) -> Option<&Learner> {
        self.learner.as_deref()
    }

    /// The published classification snapshot, `None` on read-only
    /// models.
    pub fn prototypes(&self) -> Option<&PrototypeSnapshot> {
        self.prototypes.as_deref()
    }

    /// Whether the model accepts `Train`/`Retrain`/`Classify` ops.
    pub fn is_learnable(&self) -> bool {
        self.learner.is_some()
    }

    /// A factorizer assembled from the model's memoized parts — no
    /// per-request mask rebuild.
    pub fn factorizer(&self) -> Factorizer<'_> {
        self.factorizer_with(self.config.factorize)
    }

    /// [`ModelState::factorizer`] with a per-op factorization config (the
    /// memoized masks and reconstruction memo are still shared; e.g.
    /// [`crate::FactorizeRep1`] caps the descent depth at level 1).
    pub(crate) fn factorizer_with(&self, factorize: FactorizeConfig) -> Factorizer<'_> {
        let cache: Arc<dyn factorhd_core::ReconstructionCache> =
            Arc::clone(&self.reconstruction) as _;
        Factorizer::with_parts(
            &self.taxonomy,
            factorize,
            Arc::clone(&self.unbind_keys),
            Some(cache),
        )
        .expect("model-built keys match the taxonomy")
    }
}

impl std::fmt::Debug for ModelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelState")
            .field("dim", &self.taxonomy.dim())
            .field("classes", &self.taxonomy.num_classes())
            .field("config", &self.config)
            .field("learnable", &self.is_learnable())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorhd_core::TaxonomyBuilder;

    fn taxonomy() -> Taxonomy {
        TaxonomyBuilder::new(512)
            .seed(7)
            .class("a", &[4])
            .class("b", &[4])
            .build()
            .expect("valid taxonomy")
    }

    #[test]
    fn default_config_validates() {
        assert!(EngineConfig::default().validate().is_ok());
        assert!(ModelState::new(taxonomy(), EngineConfig::default()).is_ok());
    }

    #[test]
    fn zero_and_absurd_sizes_are_rejected_typed() {
        let cases: Vec<EngineConfig> = vec![
            EngineConfig {
                batch_chunk: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                batch_chunk: MAX_BATCH_CHUNK + 1,
                ..EngineConfig::default()
            },
            EngineConfig {
                reconstruction_capacity: MAX_RECONSTRUCTION_CAPACITY + 1,
                ..EngineConfig::default()
            },
            EngineConfig {
                factorize: FactorizeConfig {
                    max_objects: 0,
                    ..FactorizeConfig::default()
                },
                ..EngineConfig::default()
            },
            EngineConfig {
                factorize: FactorizeConfig {
                    beam_width: 0,
                    ..FactorizeConfig::default()
                },
                ..EngineConfig::default()
            },
            EngineConfig {
                factorize: FactorizeConfig {
                    max_combinations: 0,
                    ..FactorizeConfig::default()
                },
                ..EngineConfig::default()
            },
            EngineConfig {
                factorize: FactorizeConfig {
                    refine_width: 0,
                    ..FactorizeConfig::default()
                },
                ..EngineConfig::default()
            },
            EngineConfig {
                factorize: FactorizeConfig {
                    accept_threshold: f64::NAN,
                    ..FactorizeConfig::default()
                },
                ..EngineConfig::default()
            },
        ];
        for config in cases {
            assert!(
                matches!(config.validate(), Err(EngineError::InvalidConfig(_))),
                "accepted {config:?}"
            );
            assert!(
                matches!(
                    ModelState::new(taxonomy(), config),
                    Err(EngineError::InvalidConfig(_))
                ),
                "constructor accepted {config:?}"
            );
        }
    }

    #[test]
    fn zero_reconstruction_capacity_is_legal() {
        // 0 means "memo disabled", not "absurd".
        let config = EngineConfig {
            reconstruction_capacity: 0,
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok());
    }

    #[test]
    fn artifact_round_trip_through_model_state() {
        let state = ModelState::new(taxonomy(), EngineConfig::default()).expect("valid");
        let mut bytes = Vec::new();
        state.save_to(&mut bytes).expect("serializes");
        let loaded =
            ModelState::load_from(&mut &bytes[..], EngineConfig::default()).expect("loads");
        assert_eq!(loaded.taxonomy().label(0), state.taxonomy().label(0));
        assert_eq!(loaded.taxonomy().seed(), state.taxonomy().seed());
    }
}
