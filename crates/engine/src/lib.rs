//! # factorhd-engine — typed, multi-model factorization serving
//!
//! The FactorHD reproduction's serving layer: typed operations over
//! named, hot-swappable models, with per-model setup paid once and
//! batches planned for contiguous packed-shard scans.
//!
//! * **Typed ops** ([`ops`]): one request type per query shape —
//!   [`FactorizeRep1`] / [`FactorizeRep2`] / [`FactorizeRep3`] for the
//!   paper's three representations, [`PartialDecode`],
//!   [`MembershipProbe`], [`EncodeScene`] — each carrying its own output
//!   type, so `engine.run(op)` returns exactly what the op produces
//!   instead of an enum to destructure. Heterogeneous batches travel as
//!   [`AnyOp`] / [`AnyOutput`].
//! * **Online learning** ([`Train`] / [`Retrain`] / [`Classify`], built
//!   on `factorhd-learn`): learnable models carry per-class prototype
//!   accumulators; `Train` bundles labelled examples in, `Retrain` runs
//!   misclassification-driven correction epochs over the replay buffer,
//!   and `Classify` scans a ternary/packed snapshot published
//!   atomically by the registry after every successful training op —
//!   readers never block on a retrain (see docs/LEARNING.md).
//! * **Models** ([`ModelState`] / [`ModelRegistry`]): a model bundles a
//!   taxonomy with its memoized parts (label-elimination masks, shared
//!   codebooks and clauses, the Rep-3 reconstruction memo). A registry
//!   maps [`ModelId`]s to models behind generation-stamped
//!   [`ModelHandle`]s, loaded and **hot-swapped** from `.fhd` artifacts
//!   at runtime — in-flight batches finish on the model they started on.
//! * **The batch planner** ([`FactorEngine::run_mixed`] /
//!   [`ModelRegistry::execute_batch`]): groups heterogeneous ops by
//!   `(model, op kind)` so same-shape work scans each codebook's packed
//!   shard table contiguously (Rep-1/Rep-2 chunks share one table
//!   traversal via `Factorizer::factorize_single_many`), fans the groups
//!   out across the rayon pool, and returns results in request order,
//!   **bit-identical** to a sequential loop.
//! * **Model artifacts** ([`artifact`]): a versioned, checksummed binary
//!   format (`.fhd`) persisting a `Taxonomy` and its codebooks, with
//!   round-trip equality guaranteed — save → load → factorize is
//!   bit-identical to the in-memory model. Version 2 also round-trips
//!   the packed shard tables of installed codebooks, so loaded models
//!   serve word-level scans warm from the first request.
//! * **Legacy shim** ([`shim`]): the old closed `Request`/`Response`
//!   enum pair survives as a deprecated shim implemented on the typed
//!   ops, bit-identical to them (proptest-pinned).
//!
//! # Quickstart
//!
//! ```
//! use factorhd_core::{Encoder, Scene, TaxonomyBuilder};
//! use factorhd_engine::{EngineConfig, FactorEngine, FactorizeRep2};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let taxonomy = TaxonomyBuilder::new(2048)
//!     .class("animal", &[8])
//!     .class("color", &[8])
//!     .build()?;
//! let engine = FactorEngine::new(taxonomy, EngineConfig::default())?;
//!
//! // Persist the model and load it back — bit-identical serving.
//! let mut artifact = Vec::new();
//! engine.save_to(&mut artifact)?;
//! let restored = FactorEngine::load_from(&mut &artifact[..], EngineConfig::default())?;
//!
//! // Typed in, typed out: a Rep-2 factorization returns a DecodedObject.
//! let mut rng = hdc::rng_from_seed(7);
//! let object = engine.taxonomy().sample_object(&mut rng);
//! let hv = Encoder::new(engine.taxonomy()).encode_scene(&Scene::single(object.clone()))?;
//! let decoded = restored.run(&FactorizeRep2 { scene: hv })?;
//! assert_eq!(decoded.object(), &object);
//! # Ok(())
//! # }
//! ```
//!
//! Multiple models side by side, hot-swapped at runtime:
//!
//! ```
//! use factorhd_core::TaxonomyBuilder;
//! use factorhd_engine::{EngineConfig, ModelRegistry, ModelState};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = ModelRegistry::new();
//! let fruit = TaxonomyBuilder::new(1024).seed(1).class("fruit", &[8]).build()?;
//! registry.install("fruit", ModelState::new(fruit, EngineConfig::default())?);
//!
//! let handle = registry.get("fruit")?; // generation-stamped
//! let retrained = TaxonomyBuilder::new(1024).seed(2).class("fruit", &[8]).build()?;
//! registry.install("fruit", ModelState::new(retrained, EngineConfig::default())?); // hot swap
//!
//! // The old handle still serves the model it resolved; new lookups see
//! // the swap.
//! assert_eq!(handle.state().taxonomy().seed(), 1);
//! assert_eq!(registry.get("fruit")?.state().taxonomy().seed(), 2);
//! assert!(registry.get("fruit")?.generation() > handle.generation());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
mod engine;
mod error;
pub mod failpoint;
pub mod metrics;
mod model;
pub mod ops;
mod plan;
mod registry;
pub mod shim;

pub use cache::{CacheStats, LruCache, ReconCache};
pub use engine::FactorEngine;
pub use error::EngineError;
pub use metrics::{
    set_metrics_recording, HistogramSnapshot, LogHistogram, MetricsSnapshot, ModelMetrics,
    OpKindMetrics, Stage, StageTimer, StageTotal,
};
pub use model::{EngineConfig, ModelState};
pub use ops::{
    AnyOp, AnyOutput, Classify, EncodeScene, FactorizeRep1, FactorizeRep2, FactorizeRep3,
    MembershipProbe, Op, OpKind, PartialDecode, Retrain, Train,
};
pub use registry::{ModelHandle, ModelId, ModelInfo, ModelRegistry};

pub use factorhd_learn::{
    ClassHit, Classification, LearnConfig, LearnError, Learner, PrototypeModel, PrototypeSnapshot,
    RetrainReport, TrainAck,
};
#[allow(deprecated)]
pub use shim::{Request, Response};

/// Convenient glob import of the serving-engine types.
pub mod prelude {
    pub use crate::{
        AnyOp, AnyOutput, CacheStats, Classify, EncodeScene, EngineConfig, EngineError,
        FactorEngine, FactorizeRep1, FactorizeRep2, FactorizeRep3, LearnConfig, MembershipProbe,
        MetricsSnapshot, ModelHandle, ModelId, ModelInfo, ModelRegistry, ModelState, Op, OpKind,
        PartialDecode, Retrain, Stage, StageTimer, Train,
    };
}
