//! # factorhd-engine — batched, cache-aware factorization serving
//!
//! The FactorHD reproduction's serving layer: instead of rebuilding
//! taxonomies, codebooks, and label-elimination masks per call and running
//! factorizations one scene at a time, a [`FactorEngine`] pays the
//! per-taxonomy setup once and serves batches of requests against it:
//!
//! * **Model artifacts** ([`artifact`]): a versioned, checksummed binary
//!   format (`.fhd`) persisting a `Taxonomy` and its codebooks, with
//!   round-trip equality guaranteed — save → load → factorize is
//!   bit-identical to the in-memory model. Version 2 also round-trips
//!   the packed shard tables of installed codebooks, so loaded models
//!   serve word-level scans warm from the first request. Hand-rolled
//!   over `std::io::{Read, Write}`; no serde.
//! * **Batched requests** ([`Request`] / [`Response`]): full factorization
//!   (Rep 1/2/3), partial (per-class) factorization, membership probes,
//!   and scene encoding, executed across a rayon worker pool with results
//!   in request order, bit-identical to a sequential loop.
//! * **Shared caches** ([`cache`]): the label-elimination masks
//!   `⊙_{j≠i} LABEL_j` are built once per engine, clauses and codebooks
//!   are shared through the taxonomy, and Rep-3 object reconstructions
//!   are memoized behind a `parking_lot`-guarded LRU — turning the
//!   per-request `O(C·D)` rebuilds into lookups.
//!
//! # Quickstart
//!
//! ```
//! use factorhd_core::{Encoder, Scene, TaxonomyBuilder};
//! use factorhd_engine::{EngineConfig, FactorEngine, Request, Response};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let taxonomy = TaxonomyBuilder::new(2048)
//!     .class("animal", &[8])
//!     .class("color", &[8])
//!     .build()?;
//! let engine = FactorEngine::new(taxonomy, EngineConfig::default());
//!
//! // Persist the model and load it back — bit-identical serving.
//! let mut artifact = Vec::new();
//! engine.save_to(&mut artifact)?;
//! let restored = FactorEngine::load_from(&mut &artifact[..], EngineConfig::default())?;
//!
//! // Serve a batch: encode a scene, then factorize it.
//! let mut rng = hdc::rng_from_seed(7);
//! let object = engine.taxonomy().sample_object(&mut rng);
//! let hv = Encoder::new(engine.taxonomy()).encode_scene(&Scene::single(object.clone()))?;
//! let responses = restored.execute_batch(&[Request::FactorizeSingle(hv)]);
//! match responses.into_iter().next().expect("one response")? {
//!     Response::Single(decoded) => assert_eq!(decoded.object(), &object),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
mod engine;
mod error;

pub use cache::{CacheStats, LruCache, ReconCache};
pub use engine::{EngineConfig, FactorEngine, Request, Response};
pub use error::EngineError;

/// Convenient glob import of the serving-engine types.
pub mod prelude {
    pub use crate::{CacheStats, EngineConfig, EngineError, FactorEngine, Request, Response};
}
