//! The legacy closed-enum serving surface, kept as a thin **deprecated**
//! shim implemented on the typed op API.
//!
//! Pre-typed-API callers pattern-matched one [`Response`] enum that the
//! type system could not tie to the [`Request`] they sent. The typed ops
//! ([`crate::ops`]) replace both enums; this module maps every legacy
//! variant onto its op (the mapping below) and routes execution through
//! the same planner, so shim results are **bit-identical** to the typed
//! path (pinned by `tests/shim_equivalence.rs`).
//!
//! | legacy | typed op |
//! |---|---|
//! | `Request::FactorizeSingle` | [`crate::FactorizeRep2`] |
//! | `Request::FactorizeMulti` | [`crate::FactorizeRep3`] |
//! | `Request::FactorizeClasses` | [`crate::PartialDecode`] |
//! | `Request::Membership` | [`crate::MembershipProbe`] |
//! | `Request::EncodeScene` | [`crate::EncodeScene`] |
//!
//! This module is the only place in the workspace allowed to use the
//! deprecated items (CI builds with deprecation warnings promoted to
//! errors everywhere else).
#![allow(deprecated)]

use crate::ops::{
    AnyOp, AnyOutput, EncodeScene, FactorizeRep2, FactorizeRep3, MembershipProbe, PartialDecode,
};
use crate::{EngineError, FactorEngine};
use factorhd_core::{ClassDecode, DecodedObject, DecodedScene, ItemPath, QueryAnswer, Scene};
use hdc::AccumHv;

/// One unit of work submitted to the engine (legacy enum form).
#[deprecated(
    since = "0.2.0",
    note = "use the typed ops (`FactorizeRep2`, `FactorizeRep3`, `PartialDecode`, \
            `MembershipProbe`, `EncodeScene`) with `FactorEngine::run` / `run_mixed`"
)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Rep-1/Rep-2 factorization of a single-object scene vector.
    FactorizeSingle(AccumHv),
    /// Rep-3 factorization of a multi-object scene vector.
    FactorizeMulti(AccumHv),
    /// Partial factorization of only the listed classes.
    FactorizeClasses {
        /// The scene hypervector to decode.
        scene: AccumHv,
        /// Class indices to decode (others are skipped entirely).
        classes: Vec<usize>,
    },
    /// Membership probe: "does the scene contain an object with these
    /// items (and with these classes absent)?"
    Membership {
        /// The scene hypervector to probe.
        scene: AccumHv,
        /// Required `(class, item path)` constraints.
        items: Vec<(usize, ItemPath)>,
        /// Classes required to be absent (NULL) on the queried object.
        absent: Vec<usize>,
    },
    /// Symbolic-to-hypervector encoding of a scene.
    EncodeScene(Scene),
}

/// The engine's answer to one [`Request`], variant-matched to it (legacy
/// enum form).
#[deprecated(
    since = "0.2.0",
    note = "typed ops return their own output types; see `FactorEngine::run`"
)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::FactorizeSingle`].
    Single(DecodedObject),
    /// Answer to [`Request::FactorizeMulti`].
    Multi(DecodedScene),
    /// Answer to [`Request::FactorizeClasses`].
    Classes(Vec<ClassDecode>),
    /// Answer to [`Request::Membership`].
    Membership(QueryAnswer),
    /// Answer to [`Request::EncodeScene`].
    Encoded(AccumHv),
}

impl From<Request> for AnyOp {
    fn from(request: Request) -> Self {
        match request {
            Request::FactorizeSingle(scene) => AnyOp::Rep2(FactorizeRep2 { scene }),
            Request::FactorizeMulti(scene) => AnyOp::Rep3(FactorizeRep3 { scene }),
            Request::FactorizeClasses { scene, classes } => {
                AnyOp::Partial(PartialDecode { scene, classes })
            }
            Request::Membership {
                scene,
                items,
                absent,
            } => AnyOp::Membership(MembershipProbe {
                scene,
                items,
                absent,
            }),
            Request::EncodeScene(scene) => AnyOp::Encode(EncodeScene { scene }),
        }
    }
}

impl From<AnyOutput> for Response {
    fn from(output: AnyOutput) -> Self {
        match output {
            AnyOutput::Rep1(decoded) | AnyOutput::Rep2(decoded) => Response::Single(decoded),
            AnyOutput::Rep3(decoded) => Response::Multi(decoded),
            AnyOutput::Partial(decodes) => Response::Classes(decodes),
            AnyOutput::Membership(answer) => Response::Membership(answer),
            AnyOutput::Encoded(hv) => Response::Encoded(hv),
            // The legacy Request enum predates the learning subsystem and
            // maps to no learning op, so no shim execution can produce
            // these outputs.
            AnyOutput::Trained(_) | AnyOutput::Retrained(_) | AnyOutput::Classified(_) => {
                unreachable!("legacy requests never map to learning ops")
            }
        }
    }
}

impl FactorEngine {
    /// Executes one legacy request through the typed op it maps to.
    ///
    /// # Errors
    ///
    /// The conditions of [`crate::Op::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `FactorEngine::run` with a typed op; see docs/SERVING.md for the migration map"
    )]
    pub fn execute(&self, request: &Request) -> Result<Response, EngineError> {
        self.run(&AnyOp::from(request.clone())).map(Response::from)
    }

    /// Executes a legacy batch through the typed planner, results in
    /// request order, bit-identical to [`FactorEngine::execute_sequential`].
    #[deprecated(
        since = "0.2.0",
        note = "use `FactorEngine::run_batch` / `run_mixed` with typed ops"
    )]
    pub fn execute_batch(&self, requests: &[Request]) -> Vec<Result<Response, EngineError>> {
        let ops: Vec<AnyOp> = requests.iter().cloned().map(AnyOp::from).collect();
        self.run_mixed(&ops)
            .into_iter()
            .map(|r| r.map(Response::from))
            .collect()
    }

    /// Executes a legacy batch one request at a time on the calling
    /// thread (the determinism reference for
    /// [`FactorEngine::execute_batch`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `FactorEngine::run_mixed_sequential` with typed ops"
    )]
    pub fn execute_sequential(&self, requests: &[Request]) -> Vec<Result<Response, EngineError>> {
        let ops: Vec<AnyOp> = requests.iter().cloned().map(AnyOp::from).collect();
        self.run_mixed_sequential(&ops)
            .into_iter()
            .map(|r| r.map(Response::from))
            .collect()
    }
}
