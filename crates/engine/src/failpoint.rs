//! Env/config-gated failpoints for fault-injection testing
//! (docs/ROBUSTNESS.md, "Failpoint catalog").
//!
//! A failpoint is a named site in production code where a chaos test can
//! inject a fault — a deliberate panic, a stall, an aborted write —
//! without a special build. Sites are compiled in unconditionally but
//! cost **one relaxed atomic load** when nothing is armed, so the hot
//! path pays nothing in normal operation.
//!
//! # Arming
//!
//! Programmatically ([`arm`] / [`disarm`] / [`reset`]), or at process
//! start via the `FACTORHD_FAILPOINTS` environment variable — a
//! comma-separated list of `name=mode` entries:
//!
//! ```text
//! FACTORHD_FAILPOINTS="engine/op_panic=tag:3,serve/batcher_stall=sleep:50"
//! ```
//!
//! Modes: `always`, `once`, `nth:K` (fires on the K-th hit, 1-based),
//! `tag:V` (fires when the site's tag equals `V`), `sleep:MS` (the site
//! sleeps `MS` milliseconds). Unparseable entries are ignored — a typo
//! in the env var must never take down a server.
//!
//! # Known sites
//!
//! | name | effect when fired |
//! |------|-------------------|
//! | `engine/op_panic` | panics inside per-op batch execution (contained into [`crate::EngineError::OpPanicked`]); tag = [`crate::AnyOp::chaos_tag`] |
//! | `engine/artifact_partial_write` | `save_model` writes a torn temp file and errors before the atomic rename, simulating a crash mid-save |
//! | `serve/batcher_stall` | the adaptive batcher sleeps before dispatching, letting chaos tests fill the admission queue deterministically |

use std::collections::HashMap;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint does when its site is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit, then disarm.
    Once,
    /// Fire on the K-th hit (1-based), then disarm.
    Nth(u64),
    /// Fire only on hits whose site tag equals this value (the tag is
    /// site-specific data, e.g. [`crate::AnyOp::chaos_tag`]).
    Tag(u64),
    /// The site sleeps this long on every hit (used by stall sites;
    /// trigger sites treat it as not firing).
    Sleep(Duration),
}

struct Entry {
    mode: FailMode,
    hits: u64,
}

struct Registry {
    points: std::sync::LazyLock<Mutex<HashMap<String, Entry>>>,
    /// Number of armed failpoints, or -1 before the env var has been
    /// parsed. The fast path is a single relaxed load of this counter.
    armed: AtomicIsize,
}

static REGISTRY: Registry = Registry {
    points: std::sync::LazyLock::new(|| Mutex::new(HashMap::new())),
    armed: AtomicIsize::new(-1),
};

/// Recovers from a poisoned registry lock: the registry holds plain
/// bookkeeping data that stays structurally valid even if a panicking
/// thread held the lock, and failpoints must keep working mid-chaos.
fn points() -> std::sync::MutexGuard<'static, HashMap<String, Entry>> {
    REGISTRY
        .points
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn ensure_init() {
    if REGISTRY.armed.load(Ordering::Relaxed) >= 0 {
        return;
    }
    let mut map = points();
    // Re-check under the lock so only one thread parses the env var.
    if REGISTRY.armed.load(Ordering::Relaxed) >= 0 {
        return;
    }
    if let Ok(spec) = std::env::var("FACTORHD_FAILPOINTS") {
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, mode)) = entry.split_once('=') else {
                continue;
            };
            if let Some(mode) = parse_mode(mode) {
                map.insert(name.trim().to_owned(), Entry { mode, hits: 0 });
            }
        }
    }
    REGISTRY.armed.store(map.len() as isize, Ordering::Release);
}

fn parse_mode(mode: &str) -> Option<FailMode> {
    let mode = mode.trim();
    match mode {
        "always" => Some(FailMode::Always),
        "once" => Some(FailMode::Once),
        _ => {
            let (kind, value) = mode.split_once(':')?;
            let value: u64 = value.trim().parse().ok()?;
            match kind.trim() {
                "nth" => Some(FailMode::Nth(value)),
                "tag" => Some(FailMode::Tag(value)),
                "sleep" => Some(FailMode::Sleep(Duration::from_millis(value))),
                _ => None,
            }
        }
    }
}

/// Whether any failpoint is armed — the cheap guard a site checks before
/// doing per-item work (one relaxed atomic load when the answer is no).
pub fn armed() -> bool {
    let count = REGISTRY.armed.load(Ordering::Relaxed);
    if count > 0 {
        return true;
    }
    if count == 0 {
        return false;
    }
    ensure_init();
    REGISTRY.armed.load(Ordering::Relaxed) > 0
}

/// Arms `name` with `mode`, replacing any previous arming.
pub fn arm(name: &str, mode: FailMode) {
    ensure_init();
    let mut map = points();
    if map
        .insert(name.to_owned(), Entry { mode, hits: 0 })
        .is_none()
    {
        REGISTRY.armed.fetch_add(1, Ordering::Release);
    }
}

/// Disarms `name`. A no-op if it was not armed.
pub fn disarm(name: &str) {
    ensure_init();
    if points().remove(name).is_some() {
        REGISTRY.armed.fetch_sub(1, Ordering::Release);
    }
}

/// Disarms every failpoint (including env-armed ones).
pub fn reset() {
    ensure_init();
    let mut map = points();
    map.clear();
    REGISTRY.armed.store(0, Ordering::Release);
}

fn fire(name: &str, tag: Option<u64>) -> Option<FailMode> {
    if !armed() {
        return None;
    }
    let mut map = points();
    let entry = map.get_mut(name)?;
    entry.hits += 1;
    match entry.mode {
        FailMode::Always => Some(FailMode::Always),
        FailMode::Once => {
            map.remove(name);
            REGISTRY.armed.fetch_sub(1, Ordering::Release);
            Some(FailMode::Once)
        }
        FailMode::Nth(n) => {
            if entry.hits == n {
                map.remove(name);
                REGISTRY.armed.fetch_sub(1, Ordering::Release);
                Some(FailMode::Nth(n))
            } else {
                None
            }
        }
        FailMode::Tag(v) => (tag == Some(v)).then_some(FailMode::Tag(v)),
        FailMode::Sleep(d) => Some(FailMode::Sleep(d)),
    }
}

/// Whether the trigger site `name` should fire on this hit. Sleep-armed
/// points never "fire" a trigger (they only stall [`sleep`] sites).
pub fn hit(name: &str) -> bool {
    !matches!(fire(name, None), None | Some(FailMode::Sleep(_)))
}

/// Like [`hit`] for tag-matched sites: a `Tag(v)`-armed point fires only
/// when `tag == v`; every other mode behaves as in [`hit`].
pub fn hit_tag(name: &str, tag: u64) -> bool {
    !matches!(fire(name, Some(tag)), None | Some(FailMode::Sleep(_)))
}

/// Stall site: sleeps for the armed duration when `name` is armed as
/// [`FailMode::Sleep`]; otherwise does nothing.
pub fn sleep(name: &str) {
    if let Some(FailMode::Sleep(duration)) = fire(name, None) {
        std::thread::sleep(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global; these tests use distinct names
    // so they stay independent under the parallel test runner.

    #[test]
    fn unarmed_points_never_fire() {
        assert!(!hit("test/never-armed"));
        assert!(!hit_tag("test/never-armed", 7));
        sleep("test/never-armed"); // returns immediately
    }

    #[test]
    fn always_fires_until_disarmed() {
        arm("test/always", FailMode::Always);
        assert!(hit("test/always"));
        assert!(hit("test/always"));
        disarm("test/always");
        assert!(!hit("test/always"));
    }

    #[test]
    fn once_fires_exactly_once() {
        arm("test/once", FailMode::Once);
        assert!(hit("test/once"));
        assert!(!hit("test/once"));
    }

    #[test]
    fn nth_fires_on_the_nth_hit_only() {
        arm("test/nth", FailMode::Nth(3));
        assert!(!hit("test/nth"));
        assert!(!hit("test/nth"));
        assert!(hit("test/nth"));
        assert!(!hit("test/nth"));
    }

    #[test]
    fn tag_matches_site_data() {
        arm("test/tag", FailMode::Tag(5));
        assert!(!hit_tag("test/tag", 4));
        assert!(hit_tag("test/tag", 5));
        assert!(hit_tag("test/tag", 5), "tag mode stays armed");
        assert!(!hit("test/tag"), "untagged hits never match a tag");
        disarm("test/tag");
    }

    #[test]
    fn sleep_mode_does_not_trigger() {
        arm("test/sleep", FailMode::Sleep(Duration::from_millis(1)));
        assert!(!hit("test/sleep"));
        let start = std::time::Instant::now();
        sleep("test/sleep");
        assert!(start.elapsed() >= Duration::from_millis(1));
        disarm("test/sleep");
    }

    #[test]
    fn mode_parsing_accepts_the_documented_grammar() {
        assert_eq!(parse_mode("always"), Some(FailMode::Always));
        assert_eq!(parse_mode(" once "), Some(FailMode::Once));
        assert_eq!(parse_mode("nth:2"), Some(FailMode::Nth(2)));
        assert_eq!(parse_mode("tag:9"), Some(FailMode::Tag(9)));
        assert_eq!(
            parse_mode("sleep:50"),
            Some(FailMode::Sleep(Duration::from_millis(50)))
        );
        assert_eq!(parse_mode("bogus"), None);
        assert_eq!(parse_mode("nth:x"), None);
    }
}
