//! Error types for the serving engine and the `.fhd` artifact codec.

use factorhd_core::FactorHdError;
use factorhd_learn::LearnError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by artifact encoding/decoding and request execution.
///
/// Every corruption mode of the `.fhd` codec maps to a typed variant —
/// malformed bytes never panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// An I/O error while reading or writing an artifact.
    Io(io::Error),
    /// The artifact does not start with the `.fhd` magic bytes.
    BadMagic {
        /// The first bytes actually found.
        found: [u8; 8],
    },
    /// The artifact declares a format version this build cannot read.
    UnsupportedVersion(u16),
    /// The trailing checksum does not match the artifact contents.
    ChecksumMismatch {
        /// Checksum stored in the artifact.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// The artifact ended before a complete structure could be read.
    Truncated {
        /// Bytes needed to finish the current field.
        needed: usize,
        /// Bytes remaining in the artifact.
        remaining: usize,
    },
    /// The artifact is structurally invalid (an out-of-range count, a
    /// non-UTF-8 class name, trailing garbage, …).
    Corrupt(String),
    /// The engine configuration failed validation (a zero or absurd batch
    /// or cache size; see [`crate::EngineConfig::validate`]).
    InvalidConfig(String),
    /// A registry operation named a model id that is not installed.
    UnknownModel {
        /// The model id the caller asked for.
        name: String,
        /// The ids actually installed at lookup time, sorted.
        registered: Vec<String>,
    },
    /// A `Train` / `Retrain` / `Classify` op reached a model with no
    /// attached learner (the model was built without
    /// [`crate::ModelState::new_learnable`]).
    NotTrainable,
    /// An error bubbled up from the learning subsystem (bad class
    /// label, dimension mismatch, invalid learner configuration).
    Learn(LearnError),
    /// An error bubbled up from the FactorHD core while rebuilding or
    /// querying the model.
    Core(FactorHdError),
    /// The op panicked during batch execution and the panic was
    /// contained to this op (the rest of the batch completed; see
    /// docs/ROBUSTNESS.md, "Panic containment").
    OpPanicked {
        /// The panic payload's message, when it was a string.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "artifact i/o error: {e}"),
            EngineError::BadMagic { found } => {
                write!(f, "bad artifact magic {found:02x?}")
            }
            EngineError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v}")
            }
            EngineError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            EngineError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated artifact: needed {needed} more bytes, {remaining} remaining"
                )
            }
            EngineError::Corrupt(reason) => write!(f, "corrupt artifact: {reason}"),
            EngineError::InvalidConfig(reason) => {
                write!(f, "invalid engine configuration: {reason}")
            }
            EngineError::UnknownModel { name, registered } => {
                write!(f, "unknown model {name:?} ")?;
                if registered.is_empty() {
                    write!(f, "(no models registered)")
                } else {
                    write!(f, "(registered: ")?;
                    for (i, id) in registered.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{id:?}")?;
                    }
                    write!(f, ")")
                }
            }
            EngineError::NotTrainable => {
                write!(f, "model has no learner attached (not trainable)")
            }
            EngineError::Learn(e) => write!(f, "learn error: {e}"),
            EngineError::Core(e) => write!(f, "model error: {e}"),
            EngineError::OpPanicked { message } => {
                write!(f, "op panicked during batch execution: {message}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            EngineError::Core(e) => Some(e),
            EngineError::Learn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EngineError {
    fn from(value: io::Error) -> Self {
        EngineError::Io(value)
    }
}

impl From<FactorHdError> for EngineError {
    fn from(value: FactorHdError) -> Self {
        EngineError::Core(value)
    }
}

impl From<hdc::HdcError> for EngineError {
    fn from(value: hdc::HdcError) -> Self {
        EngineError::Core(FactorHdError::from(value))
    }
}

impl From<LearnError> for EngineError {
    fn from(value: LearnError) -> Self {
        EngineError::Learn(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let cases: Vec<EngineError> = vec![
            EngineError::Io(io::Error::other("boom")),
            EngineError::BadMagic { found: [0; 8] },
            EngineError::UnsupportedVersion(9),
            EngineError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            EngineError::Truncated {
                needed: 8,
                remaining: 3,
            },
            EngineError::Corrupt("trailing garbage".into()),
            EngineError::InvalidConfig("batch_chunk must be at least 1".into()),
            EngineError::UnknownModel {
                name: "fruit".into(),
                registered: vec!["animal".into(), "color".into()],
            },
            EngineError::NotTrainable,
            EngineError::Learn(LearnError::UnknownClass {
                class: 7,
                classes: 3,
            }),
            EngineError::Core(FactorHdError::NoClasses),
            EngineError::OpPanicked {
                message: "index out of bounds".into(),
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn unknown_model_display_names_the_request_and_the_registry() {
        let empty = EngineError::UnknownModel {
            name: "typo".into(),
            registered: vec![],
        };
        assert_eq!(
            empty.to_string(),
            "unknown model \"typo\" (no models registered)"
        );
        let populated = EngineError::UnknownModel {
            name: "typo".into(),
            registered: vec!["a".into(), "b".into()],
        };
        assert_eq!(
            populated.to_string(),
            "unknown model \"typo\" (registered: \"a\", \"b\")"
        );
    }

    #[test]
    fn every_variant_is_constructed_and_matched() {
        // Exhaustiveness pin: constructing one value per variant and
        // matching without a wildcard means adding a variant without
        // display/source coverage fails to compile here first.
        let all: Vec<EngineError> = vec![
            EngineError::Io(io::Error::other("x")),
            EngineError::BadMagic { found: [1; 8] },
            EngineError::UnsupportedVersion(3),
            EngineError::ChecksumMismatch {
                stored: 0,
                computed: 1,
            },
            EngineError::Truncated {
                needed: 1,
                remaining: 0,
            },
            EngineError::Corrupt("c".into()),
            EngineError::InvalidConfig("i".into()),
            EngineError::UnknownModel {
                name: "m".into(),
                registered: vec![],
            },
            EngineError::NotTrainable,
            EngineError::Learn(LearnError::InvalidConfig("zero classes".into())),
            EngineError::Core(FactorHdError::EmptyScene),
            EngineError::OpPanicked {
                message: "poisoned".into(),
            },
        ];
        for err in &all {
            let has_source = match err {
                EngineError::Io(_) | EngineError::Core(_) | EngineError::Learn(_) => true,
                EngineError::BadMagic { .. }
                | EngineError::UnsupportedVersion(_)
                | EngineError::ChecksumMismatch { .. }
                | EngineError::Truncated { .. }
                | EngineError::Corrupt(_)
                | EngineError::InvalidConfig(_)
                | EngineError::UnknownModel { .. }
                | EngineError::NotTrainable
                | EngineError::OpPanicked { .. } => false,
            };
            assert_eq!(Error::source(err).is_some(), has_source, "{err}");
        }
    }

    #[test]
    fn conversions_and_sources() {
        let io_err: EngineError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(Error::source(&io_err).is_some());
        let core_err: EngineError = FactorHdError::EmptyScene.into();
        assert!(matches!(core_err, EngineError::Core(_)));
        let hdc_err: EngineError = hdc::HdcError::EmptyCodebook.into();
        assert!(matches!(hdc_err, EngineError::Core(FactorHdError::Hdc(_))));
        let learn_err: EngineError = LearnError::DimMismatch {
            expected: 8,
            found: 4,
        }
        .into();
        assert!(Error::source(&learn_err).is_some());
        assert!(matches!(learn_err, EngineError::Learn(_)));
    }
}
