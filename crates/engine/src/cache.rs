//! Caches the engine shares across requests: a small LRU plus the
//! reconstruction memo injected into the factorizer.

use factorhd_core::{Encoder, FactorHdError, ObjectSpec, ReconstructionCache};
use hdc::TernaryHv;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;

/// Counters describing how a cache has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of resident entries (0 = caching disabled).
    pub capacity: usize,
}

/// A least-recently-used map with explicit capacity.
///
/// Entries carry a monotonically increasing access stamp; eviction scans
/// for the stale minimum. The scan is `O(capacity)`, which is fine for
/// the engine's small, fixed capacities — no dependency on an external
/// LRU crate (the build environment has none).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            tick: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when
    /// the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Usage counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// The engine's Rep-3 reconstruction memo: `ObjectSpec → encoded clause
/// product`, shared across every request against one taxonomy.
///
/// Values are deterministic functions of the taxonomy, so concurrent
/// insert races cannot change what any request observes — batch output
/// stays bit-identical to sequential. Entries are `Arc`-shared, so a hit
/// is allocation-free. The memo snapshots the taxonomy's
/// [`codebook_generation`](factorhd_core::Taxonomy::codebook_generation)
/// and flushes itself whenever `set_codebook` has moved it, so installing
/// trained prototypes mid-flight can never serve stale reconstructions.
#[derive(Debug)]
pub struct ReconCache {
    inner: Mutex<ReconCacheInner>,
}

#[derive(Debug)]
struct ReconCacheInner {
    cache: LruCache<ObjectSpec, Arc<TernaryHv>>,
    generation: u64,
}

use std::sync::Arc;

impl ReconCache {
    /// Creates a reconstruction memo holding at most `capacity` objects.
    pub fn new(capacity: usize) -> Self {
        ReconCache {
            inner: Mutex::new(ReconCacheInner {
                cache: LruCache::new(capacity),
                generation: 0,
            }),
        }
    }

    /// Usage counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().cache.stats()
    }

    /// Flushes every entry when `generation` differs from the one the
    /// cache was populated at, then returns the lock guard.
    fn synced(&self, generation: u64) -> parking_lot::MutexGuard<'_, ReconCacheInner> {
        let mut inner = self.inner.lock();
        if inner.generation != generation {
            let capacity = inner.cache.stats().capacity;
            inner.cache = LruCache::new(capacity);
            inner.generation = generation;
        }
        inner
    }
}

impl ReconstructionCache for ReconCache {
    fn get_or_encode(
        &self,
        encoder: &Encoder<'_>,
        object: &ObjectSpec,
    ) -> Result<Arc<TernaryHv>, FactorHdError> {
        let generation = encoder.taxonomy().codebook_generation();
        if let Some(hit) = self.synced(generation).cache.get(object) {
            return Ok(hit);
        }
        // Encode outside the lock so concurrent requests never serialize
        // on hypervector arithmetic.
        let encoded = Arc::new(encoder.encode_object(object)?);
        self.synced(generation)
            .cache
            .insert(object.clone(), Arc::clone(&encoded));
        Ok(encoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorhd_core::TaxonomyBuilder;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10)); // refresh 1
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn lru_reinsert_does_not_evict() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // same key: overwrite, no eviction
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn recon_cache_matches_plain_encoding() {
        let taxonomy = TaxonomyBuilder::new(512)
            .seed(9)
            .class("a", &[4, 2])
            .class("b", &[4])
            .build()
            .expect("valid taxonomy");
        let encoder = Encoder::new(&taxonomy);
        let cache = ReconCache::new(8);
        let mut rng = hdc::rng_from_seed(5);
        let object = taxonomy.sample_object(&mut rng);
        let direct = encoder.encode_object(&object).unwrap();
        let first = cache.get_or_encode(&encoder, &object).unwrap();
        let second = cache.get_or_encode(&encoder, &object).unwrap();
        assert_eq!(first.as_ref(), &direct);
        assert_eq!(second.as_ref(), &direct);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }
}
