//! The typed serving engine over one model.

use crate::metrics::{self, MetricsSnapshot};
use crate::ops::{AnyOp, AnyOutput, Op};
use crate::{plan, CacheStats, EngineConfig, EngineError, ModelState};
use factorhd_core::Taxonomy;
use rayon::prelude::*;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// A factorization server over one [`ModelState`].
///
/// The engine pays per-model setup exactly once — label-elimination
/// masks, lazily shared codebooks and clauses, and the Rep-3
/// reconstruction memo — then serves every request as lookups plus the
/// irreducible similarity arithmetic. Requests are typed ops
/// ([`crate::ops`]): [`FactorEngine::run`] returns each op's own output
/// type, [`FactorEngine::run_batch`] plans a homogeneous batch (chunking
/// groupable ops through their grouped scan kernels), and
/// [`FactorEngine::run_mixed`] plans a heterogeneous [`AnyOp`] batch.
/// Batches run on the rayon pool; results are returned in request order
/// and are bit-identical to a sequential loop because every kernel is a
/// pure function of the `(op, model)` pair.
///
/// Engines serving multiple named, hot-swappable models stack a
/// [`crate::ModelRegistry`] on top of the same ops.
pub struct FactorEngine {
    model: Arc<ModelState>,
}

impl FactorEngine {
    /// Creates an engine serving `taxonomy`.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when `config` fails
    /// [`EngineConfig::validate`].
    pub fn new(taxonomy: Taxonomy, config: EngineConfig) -> Result<Self, EngineError> {
        Ok(FactorEngine::from_state(ModelState::new(taxonomy, config)?))
    }

    /// Creates an engine over an already-shared taxonomy.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when `config` fails
    /// [`EngineConfig::validate`].
    pub fn from_arc(taxonomy: Arc<Taxonomy>, config: EngineConfig) -> Result<Self, EngineError> {
        Ok(FactorEngine::from_state(ModelState::from_arc(
            taxonomy, config,
        )?))
    }

    /// Wraps an already-built model state (e.g. one resolved from a
    /// [`crate::ModelRegistry`] handle).
    pub fn from_state(model: ModelState) -> Self {
        FactorEngine::from_shared(Arc::new(model))
    }

    /// [`FactorEngine::from_state`] over a shared state.
    pub fn from_shared(model: Arc<ModelState>) -> Self {
        FactorEngine { model }
    }

    /// Loads an engine from a `.fhd` model artifact at `path`.
    ///
    /// # Errors
    ///
    /// The conditions of [`ModelState::load`].
    pub fn load<P: AsRef<Path>>(path: P, config: EngineConfig) -> Result<Self, EngineError> {
        Ok(FactorEngine::from_state(ModelState::load(path, config)?))
    }

    /// Loads an engine from `.fhd` bytes supplied by `reader`.
    ///
    /// # Errors
    ///
    /// The conditions of [`ModelState::load_from`].
    pub fn load_from<R: Read>(reader: &mut R, config: EngineConfig) -> Result<Self, EngineError> {
        Ok(FactorEngine::from_state(ModelState::load_from(
            reader, config,
        )?))
    }

    /// Saves the engine's model as a `.fhd` artifact at `path`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] on filesystem failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        self.model.save(path)
    }

    /// Writes the engine's model as `.fhd` bytes to `writer`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] on write failure.
    pub fn save_to<W: Write>(&self, writer: &mut W) -> Result<(), EngineError> {
        self.model.save_to(writer)
    }

    /// The model this engine serves.
    pub fn model(&self) -> &Arc<ModelState> {
        &self.model
    }

    /// The taxonomy this engine serves.
    pub fn taxonomy(&self) -> &Taxonomy {
        self.model.taxonomy()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        self.model.config()
    }

    /// Usage counters of the reconstruction memo (hits grow as the cache
    /// warms; compare cold vs warm runs).
    pub fn reconstruction_stats(&self) -> CacheStats {
        self.model.reconstruction_stats()
    }

    /// Executes one typed op, returning **its own output type** — a
    /// [`crate::FactorizeRep3`] comes back as a
    /// [`factorhd_core::DecodedScene`], a [`crate::MembershipProbe`] as a
    /// [`factorhd_core::QueryAnswer`], with nothing to destructure.
    ///
    /// ```
    /// use factorhd_core::{Encoder, Scene, TaxonomyBuilder};
    /// use factorhd_engine::{EngineConfig, FactorEngine, FactorizeRep2};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let taxonomy = TaxonomyBuilder::new(2048)
    ///     .class("shape", &[8])
    ///     .class("color", &[8])
    ///     .build()?;
    /// let engine = FactorEngine::new(taxonomy, EngineConfig::default())?;
    ///
    /// let mut rng = hdc::rng_from_seed(11);
    /// let object = engine.taxonomy().sample_object(&mut rng);
    /// let hv = Encoder::new(engine.taxonomy()).encode_scene(&Scene::single(object.clone()))?;
    ///
    /// // Typed in, typed out: `run` returns a DecodedObject directly.
    /// let decoded = engine.run(&FactorizeRep2 { scene: hv })?;
    /// assert_eq!(decoded.object(), &object);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// The conditions of [`Op::run`].
    pub fn run<O: Op>(&self, op: &O) -> Result<O::Output, EngineError> {
        let kind = op.kind();
        metrics::record_submitted(kind, 1);
        let started = metrics::now();
        let result = op.run(&self.model);
        if let Some(started) = started {
            metrics::record_op_nanos(kind, started.elapsed().as_nanos() as u64);
        }
        metrics::record_outcomes(kind, result.is_ok() as u64, result.is_err() as u64);
        metrics::record_model_ops(metrics::UNREGISTERED_GENERATION, 1);
        result
    }

    /// Executes a homogeneous typed batch across the worker pool, results
    /// in op order, bit-identical to calling [`FactorEngine::run`] per
    /// op. Groupable ops ([`Op::groupable`]) are chunked adaptively —
    /// about two tasks per pool lane, never below the
    /// [`EngineConfig::batch_chunk`] amortization floor — so each chunk
    /// amortizes its level-1 codebook scans ([`Op::run_many`]); other ops
    /// run one per task. Chunk boundaries never affect results.
    pub fn run_batch<O>(&self, ops: &[O]) -> Vec<Result<O::Output, EngineError>>
    where
        O: Op + Sync,
        O::Output: Send,
    {
        let model = self.model.as_ref();
        metrics::record_batch_size(ops.len() as u64);
        if !ops.is_empty() {
            metrics::record_model_ops(metrics::UNREGISTERED_GENERATION, ops.len() as u64);
        }
        if O::groupable() {
            let chunk = plan::task_chunk(true, ops.len(), model.config().batch_chunk);
            let chunks: Vec<&[O]> = ops.chunks(chunk).collect();
            let per_chunk: Vec<Vec<Result<O::Output, EngineError>>> = chunks
                .par_iter()
                .map(|piece| {
                    metrics::record_chunk_size(piece.len() as u64);
                    let refs: Vec<&O> = piece.iter().collect();
                    if let Some(kind) = piece.first().map(Op::kind) {
                        metrics::record_submitted(kind, piece.len() as u64);
                    }
                    let started = metrics::now();
                    let results = O::run_many(model, &refs);
                    record_slice_outcomes(piece, &results, started);
                    results
                })
                .collect();
            per_chunk.into_iter().flatten().collect()
        } else {
            ops.par_iter()
                .map(|op| {
                    let kind = op.kind();
                    metrics::record_submitted(kind, 1);
                    let started = metrics::now();
                    let result = op.run(model);
                    if let Some(started) = started {
                        metrics::record_op_nanos(kind, started.elapsed().as_nanos() as u64);
                    }
                    metrics::record_outcomes(kind, result.is_ok() as u64, result.is_err() as u64);
                    result
                })
                .collect()
        }
    }

    /// Executes a heterogeneous batch: ops are grouped by kind so
    /// same-shape work scans the packed shards contiguously, then fanned
    /// out across the pool. Results in input order, **bit-identical** to
    /// [`FactorEngine::run_mixed_sequential`].
    pub fn run_mixed(&self, ops: &[AnyOp]) -> Vec<Result<AnyOutput, EngineError>> {
        metrics::record_model_ops(metrics::UNREGISTERED_GENERATION, ops.len() as u64);
        plan::execute_mixed(&self.model, ops)
    }

    /// The determinism reference for [`FactorEngine::run_mixed`]: one op
    /// at a time on the calling thread, no grouping — and deliberately
    /// uninstrumented, so reference comparisons never perturb the
    /// telemetry they are checked against.
    pub fn run_mixed_sequential(&self, ops: &[AnyOp]) -> Vec<Result<AnyOutput, EngineError>> {
        ops.iter().map(|op| op.run(&self.model)).collect()
    }

    /// A copy-out of the process-global telemetry tables: per-op-kind
    /// counters and latency quantiles, batch/chunk histograms, per-stage
    /// timings, and per-model op counts. See [`crate::metrics`] and
    /// docs/OBSERVABILITY.md.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        metrics::snapshot()
    }
}

/// Records outcome counts and per-op latency shares for one executed
/// chunk of a homogeneous batch.
fn record_slice_outcomes<O: Op>(
    ops: &[O],
    results: &[Result<O::Output, EngineError>],
    started: Option<std::time::Instant>,
) {
    let Some(kind) = ops.first().map(Op::kind) else {
        return;
    };
    let completed = results.iter().filter(|r| r.is_ok()).count() as u64;
    metrics::record_outcomes(kind, completed, results.len() as u64 - completed);
    if let Some(started) = started {
        let nanos = started.elapsed().as_nanos() as u64;
        metrics::record_group_nanos(kind, results.len() as u64, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{
        EncodeScene, FactorizeRep1, FactorizeRep2, FactorizeRep3, MembershipProbe, PartialDecode,
    };
    use factorhd_core::{
        Encoder, FactorHdError, FactorizeConfig, ItemPath, ObjectSpec, Scene, TaxonomyBuilder,
        ThresholdPolicy,
    };
    use hdc::AccumHv;

    fn taxonomy(seed: u64) -> Taxonomy {
        TaxonomyBuilder::new(2048)
            .seed(seed)
            .class("animal", &[8, 4])
            .class("color", &[8])
            .class("size", &[8])
            .build()
            .expect("valid taxonomy")
    }

    fn engine(seed: u64) -> FactorEngine {
        FactorEngine::new(
            taxonomy(seed),
            EngineConfig {
                factorize: FactorizeConfig {
                    threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                    ..FactorizeConfig::default()
                },
                ..EngineConfig::default()
            },
        )
        .expect("valid config")
    }

    fn mixed_ops(engine: &FactorEngine, n: usize, seed: u64) -> Vec<AnyOp> {
        let encoder = Encoder::new(engine.taxonomy());
        let mut rng = hdc::rng_from_seed(seed);
        (0..n)
            .map(|i| {
                let object = engine.taxonomy().sample_object(&mut rng);
                match i % 6 {
                    0 => AnyOp::Rep2(FactorizeRep2 {
                        scene: encoder.encode_scene(&Scene::single(object)).unwrap(),
                    }),
                    1 => {
                        let scene = engine.taxonomy().sample_scene(2, true, &mut rng);
                        AnyOp::Rep3(FactorizeRep3 {
                            scene: encoder.encode_scene(&scene).unwrap(),
                        })
                    }
                    2 => AnyOp::Partial(PartialDecode {
                        scene: encoder.encode_scene(&Scene::single(object)).unwrap(),
                        classes: vec![1],
                    }),
                    3 => AnyOp::Membership(MembershipProbe {
                        scene: encoder
                            .encode_scene(&Scene::single(object.clone()))
                            .unwrap(),
                        items: vec![(1, object.assignment(1).unwrap().clone())],
                        absent: vec![],
                    }),
                    4 => AnyOp::Rep1(FactorizeRep1 {
                        scene: encoder.encode_scene(&Scene::single(object)).unwrap(),
                    }),
                    _ => AnyOp::Encode(EncodeScene {
                        scene: Scene::single(object),
                    }),
                }
            })
            .collect()
    }

    fn unwrap_all(results: Vec<Result<AnyOutput, EngineError>>) -> Vec<AnyOutput> {
        results
            .into_iter()
            .map(|r| r.expect("op succeeds"))
            .collect()
    }

    #[test]
    fn mixed_batch_is_bit_identical_to_sequential() {
        let eng = engine(77);
        let ops = mixed_ops(&eng, 18, 1);
        let batched = unwrap_all(eng.run_mixed(&ops));
        let sequential = unwrap_all(eng.run_mixed_sequential(&ops));
        assert_eq!(batched, sequential);
        // And a second (warm-cache) pass does not change anything.
        let warm = unwrap_all(eng.run_mixed(&ops));
        assert_eq!(warm, batched);
        // Output variants match the op kinds in order.
        for (op, out) in ops.iter().zip(&batched) {
            assert_eq!(op.kind(), out.kind());
        }
    }

    #[test]
    fn typed_ops_recover_the_encoded_objects() {
        let eng = engine(78);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(2);
        let object = eng.taxonomy().sample_object(&mut rng);
        let hv = encoder
            .encode_scene(&Scene::single(object.clone()))
            .unwrap();
        let decoded = eng
            .run(&FactorizeRep2 { scene: hv.clone() })
            .expect("decodes");
        assert_eq!(decoded.object(), &object);
        let encoded = eng
            .run(&EncodeScene {
                scene: Scene::single(object),
            })
            .expect("encodes");
        assert_eq!(encoded, hv);
    }

    #[test]
    fn rep1_decodes_top_level_only() {
        let eng = engine(84);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(5);
        let object = eng.taxonomy().sample_object(&mut rng);
        let hv = encoder
            .encode_scene(&Scene::single(object.clone()))
            .unwrap();
        let flat = eng.run(&FactorizeRep1 { scene: hv.clone() }).unwrap();
        let deep = eng.run(&FactorizeRep2 { scene: hv }).unwrap();
        // Class 0 is hierarchical: Rep 1 stops at depth 1, Rep 2 descends.
        assert_eq!(flat.object().assignment(0).unwrap().depth(), 1);
        assert_eq!(
            deep.object().assignment(0).unwrap().depth(),
            eng.taxonomy().levels(0)
        );
        // Their top-level choices agree.
        assert_eq!(
            flat.object().assignment(0).unwrap().indices()[0],
            deep.object().assignment(0).unwrap().indices()[0]
        );
    }

    #[test]
    fn run_batch_grouped_matches_per_op() {
        let eng = engine(85);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(6);
        let ops: Vec<FactorizeRep2> = (0..20)
            .map(|_| {
                let object = eng.taxonomy().sample_object(&mut rng);
                FactorizeRep2 {
                    scene: encoder.encode_scene(&Scene::single(object)).unwrap(),
                }
            })
            .collect();
        let batched: Vec<_> = eng
            .run_batch(&ops)
            .into_iter()
            .map(|r| r.expect("decodes"))
            .collect();
        let singles: Vec<_> = ops.iter().map(|op| eng.run(op).expect("decodes")).collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn warm_cache_registers_hits() {
        let eng = engine(79);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(3);
        let scene = eng.taxonomy().sample_scene(2, true, &mut rng);
        let op = FactorizeRep3 {
            scene: encoder.encode_scene(&scene).unwrap(),
        };
        let cold = eng.run(&op).unwrap();
        let after_cold = eng.reconstruction_stats();
        let warm = eng.run(&op).unwrap();
        let after_warm = eng.reconstruction_stats();
        assert_eq!(cold, warm);
        assert!(after_cold.misses > 0, "cold run must populate the memo");
        assert!(
            after_warm.hits > after_cold.hits,
            "warm run must hit the memo: {after_warm:?}"
        );
    }

    #[test]
    fn set_codebook_after_serving_flushes_reconstructions() {
        // Installing trained prototypes through the engine's own taxonomy
        // accessor must invalidate memoized reconstructions: post-mutation
        // serving must match a freshly built engine over the same model.
        let eng = engine(83);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(6);
        let scene = eng.taxonomy().sample_scene(2, true, &mut rng);
        let op = FactorizeRep3 {
            scene: encoder.encode_scene(&scene).unwrap(),
        };
        let _ = eng.run(&op).unwrap(); // populate the memo

        let trained = hdc::Codebook::derive(0xAB, 8, 2048);
        eng.taxonomy()
            .set_codebook(1, &[], trained.clone())
            .unwrap();

        let fresh_taxonomy = taxonomy(83);
        fresh_taxonomy.set_codebook(1, &[], trained).unwrap();
        let fresh = FactorEngine::from_arc(Arc::new(fresh_taxonomy), *eng.config()).expect("valid");
        // Re-encode the request against the mutated model so both engines
        // answer the same question.
        let encoder = Encoder::new(eng.taxonomy());
        let op = FactorizeRep3 {
            scene: encoder.encode_scene(&scene).unwrap(),
        };
        assert_eq!(
            eng.run(&op).unwrap(),
            fresh.run(&op).unwrap(),
            "stale reconstruction served after set_codebook"
        );
    }

    #[test]
    fn dimension_mismatch_surfaces_as_core_error() {
        let eng = engine(80);
        let result = eng.run(&FactorizeRep2 {
            scene: AccumHv::zeros(64),
        });
        assert!(matches!(
            result,
            Err(EngineError::Core(FactorHdError::DimensionMismatch { .. }))
        ));
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let result = FactorEngine::new(
            taxonomy(90),
            EngineConfig {
                batch_chunk: 0,
                ..EngineConfig::default()
            },
        );
        assert!(matches!(result, Err(EngineError::InvalidConfig(_))));
    }

    #[test]
    fn membership_detects_absent_classes() {
        let eng = engine(81);
        let encoder = Encoder::new(eng.taxonomy());
        let object = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![3, 1])),
            None,
            Some(ItemPath::top(5)),
        ]);
        let hv = encoder.encode_scene(&Scene::single(object)).unwrap();
        let answer = eng
            .run(&MembershipProbe {
                scene: hv,
                items: vec![(0, ItemPath::new(vec![3, 1]))],
                absent: vec![1],
            })
            .unwrap();
        assert!(answer.present);
    }

    #[test]
    fn artifact_round_trip_serves_identically() {
        let eng = engine(82);
        let ops = mixed_ops(&eng, 12, 4);
        let mut bytes = Vec::new();
        eng.save_to(&mut bytes).expect("serializes");
        let loaded = FactorEngine::load_from(&mut &bytes[..], *eng.config()).expect("deserializes");
        assert_eq!(
            unwrap_all(eng.run_mixed(&ops)),
            unwrap_all(loaded.run_mixed(&ops)),
        );
    }
}
