//! The batched factorization serving engine.

use crate::cache::{CacheStats, ReconCache};
use crate::{artifact, EngineError};
use factorhd_core::{
    build_unbind_keys, ClassDecode, DecodedObject, DecodedScene, Encoder, FactorizeConfig,
    Factorizer, ItemPath, QueryAnswer, Scene, SceneQuery, Taxonomy,
};
use hdc::{AccumHv, BipolarHv};
use rayon::prelude::*;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Tuning knobs for [`FactorEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Factorization configuration applied to every request.
    pub factorize: FactorizeConfig,
    /// Capacity (in objects) of the Rep-3 reconstruction memo; 0 disables
    /// it.
    pub reconstruction_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            factorize: FactorizeConfig::default(),
            reconstruction_capacity: 1024,
        }
    }
}

/// One unit of work submitted to the engine.
///
/// Scene hypervectors arrive pre-encoded (the wire format a remote client
/// would ship); [`Request::EncodeScene`] covers the encoding direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Rep-1/Rep-2 factorization of a single-object scene vector.
    FactorizeSingle(AccumHv),
    /// Rep-3 factorization of a multi-object scene vector.
    FactorizeMulti(AccumHv),
    /// Partial factorization of only the listed classes.
    FactorizeClasses {
        /// The scene hypervector to decode.
        scene: AccumHv,
        /// Class indices to decode (others are skipped entirely).
        classes: Vec<usize>,
    },
    /// Membership probe: "does the scene contain an object with these
    /// items (and with these classes absent)?"
    Membership {
        /// The scene hypervector to probe.
        scene: AccumHv,
        /// Required `(class, item path)` constraints.
        items: Vec<(usize, ItemPath)>,
        /// Classes required to be absent (NULL) on the queried object.
        absent: Vec<usize>,
    },
    /// Symbolic-to-hypervector encoding of a scene.
    EncodeScene(Scene),
}

/// The engine's answer to one [`Request`], variant-matched to it.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::FactorizeSingle`].
    Single(DecodedObject),
    /// Answer to [`Request::FactorizeMulti`].
    Multi(DecodedScene),
    /// Answer to [`Request::FactorizeClasses`].
    Classes(Vec<ClassDecode>),
    /// Answer to [`Request::Membership`].
    Membership(QueryAnswer),
    /// Answer to [`Request::EncodeScene`].
    Encoded(AccumHv),
}

/// A factorization server over one [`Taxonomy`].
///
/// The engine pays per-taxonomy setup exactly once — label-elimination
/// masks ([`build_unbind_keys`]), lazily shared codebooks and clauses,
/// and the Rep-3 reconstruction memo — then serves every request as
/// lookups plus the irreducible similarity arithmetic. Batches run on the
/// rayon pool; results are returned in request order and are bit-identical
/// to a sequential loop because every kernel is a pure function of the
/// (request, taxonomy) pair.
pub struct FactorEngine {
    taxonomy: Arc<Taxonomy>,
    config: EngineConfig,
    unbind_keys: Arc<Vec<BipolarHv>>,
    reconstruction: Arc<ReconCache>,
}

impl FactorEngine {
    /// Creates an engine serving `taxonomy`.
    pub fn new(taxonomy: Taxonomy, config: EngineConfig) -> Self {
        FactorEngine::from_arc(Arc::new(taxonomy), config)
    }

    /// Creates an engine over an already-shared taxonomy.
    pub fn from_arc(taxonomy: Arc<Taxonomy>, config: EngineConfig) -> Self {
        let unbind_keys = Arc::new(build_unbind_keys(&taxonomy));
        let reconstruction = Arc::new(ReconCache::new(config.reconstruction_capacity));
        FactorEngine {
            taxonomy,
            config,
            unbind_keys,
            reconstruction,
        }
    }

    /// Loads an engine from a `.fhd` model artifact at `path`.
    ///
    /// # Errors
    ///
    /// The conditions of [`artifact::load_taxonomy`].
    pub fn load<P: AsRef<Path>>(path: P, config: EngineConfig) -> Result<Self, EngineError> {
        Ok(FactorEngine::new(artifact::load_taxonomy(path)?, config))
    }

    /// Loads an engine from `.fhd` bytes supplied by `reader`.
    ///
    /// # Errors
    ///
    /// The conditions of [`artifact::read_taxonomy`].
    pub fn load_from<R: Read>(reader: &mut R, config: EngineConfig) -> Result<Self, EngineError> {
        Ok(FactorEngine::new(artifact::read_taxonomy(reader)?, config))
    }

    /// Saves the engine's model as a `.fhd` artifact at `path`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] on filesystem failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        artifact::save_taxonomy(path, &self.taxonomy)
    }

    /// Writes the engine's model as `.fhd` bytes to `writer`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] on write failure.
    pub fn save_to<W: Write>(&self, writer: &mut W) -> Result<(), EngineError> {
        artifact::write_taxonomy(writer, &self.taxonomy)
    }

    /// The taxonomy this engine serves.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Usage counters of the reconstruction memo (hits grow as the cache
    /// warms; compare cold vs warm runs).
    pub fn reconstruction_stats(&self) -> CacheStats {
        self.reconstruction.stats()
    }

    /// A factorizer assembled from the engine's memoized parts — no
    /// per-request mask rebuild.
    fn factorizer(&self) -> Factorizer<'_> {
        let cache: Arc<dyn factorhd_core::ReconstructionCache> =
            Arc::clone(&self.reconstruction) as _;
        Factorizer::with_parts(
            &self.taxonomy,
            self.config.factorize,
            Arc::clone(&self.unbind_keys),
            Some(cache),
        )
        .expect("engine-built keys match the taxonomy")
    }

    /// Executes one request.
    ///
    /// # Errors
    ///
    /// [`EngineError::Core`] wrapping the underlying validation or
    /// dimension error.
    pub fn execute(&self, request: &Request) -> Result<Response, EngineError> {
        match request {
            Request::FactorizeSingle(scene) => {
                Ok(Response::Single(self.factorizer().factorize_single(scene)?))
            }
            Request::FactorizeMulti(scene) => {
                Ok(Response::Multi(self.factorizer().factorize_multi(scene)?))
            }
            Request::FactorizeClasses { scene, classes } => Ok(Response::Classes(
                self.factorizer().factorize_classes(scene, classes)?,
            )),
            Request::Membership {
                scene,
                items,
                absent,
            } => {
                let mut query = SceneQuery::new(&self.taxonomy);
                for (class, path) in items {
                    query = query.with_item(*class, path.clone())?;
                }
                for &class in absent {
                    query = query.with_absent(class)?;
                }
                Ok(Response::Membership(query.evaluate(scene)?))
            }
            Request::EncodeScene(scene) => Ok(Response::Encoded(
                Encoder::new(&self.taxonomy).encode_scene(scene)?,
            )),
        }
    }

    /// Executes a batch across the worker pool, returning results in
    /// request order, bit-identical to [`FactorEngine::execute_sequential`].
    ///
    /// ```
    /// use factorhd_core::{Encoder, Scene, TaxonomyBuilder};
    /// use factorhd_engine::{EngineConfig, FactorEngine, Request, Response};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let taxonomy = TaxonomyBuilder::new(2048)
    ///     .class("shape", &[8])
    ///     .class("color", &[8])
    ///     .build()?;
    /// let engine = FactorEngine::new(taxonomy, EngineConfig::default());
    ///
    /// let mut rng = hdc::rng_from_seed(11);
    /// let object = engine.taxonomy().sample_object(&mut rng);
    /// let hv = Encoder::new(engine.taxonomy()).encode_scene(&Scene::single(object.clone()))?;
    ///
    /// let responses = engine.execute_batch(&[Request::FactorizeSingle(hv)]);
    /// match responses.into_iter().next().expect("one response")? {
    ///     Response::Single(decoded) => assert_eq!(decoded.object(), &object),
    ///     other => panic!("unexpected response {other:?}"),
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn execute_batch(&self, requests: &[Request]) -> Vec<Result<Response, EngineError>> {
        requests.par_iter().map(|r| self.execute(r)).collect()
    }

    /// Executes a batch one request at a time on the calling thread (the
    /// determinism reference for [`FactorEngine::execute_batch`]).
    pub fn execute_sequential(&self, requests: &[Request]) -> Vec<Result<Response, EngineError>> {
        requests.iter().map(|r| self.execute(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorhd_core::{FactorHdError, ObjectSpec, TaxonomyBuilder, ThresholdPolicy};

    fn taxonomy(seed: u64) -> Taxonomy {
        TaxonomyBuilder::new(2048)
            .seed(seed)
            .class("animal", &[8, 4])
            .class("color", &[8])
            .class("size", &[8])
            .build()
            .expect("valid taxonomy")
    }

    fn engine(seed: u64) -> FactorEngine {
        FactorEngine::new(
            taxonomy(seed),
            EngineConfig {
                factorize: FactorizeConfig {
                    threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                    ..FactorizeConfig::default()
                },
                ..EngineConfig::default()
            },
        )
    }

    fn mixed_requests(engine: &FactorEngine, n: usize, seed: u64) -> Vec<Request> {
        let encoder = Encoder::new(engine.taxonomy());
        let mut rng = hdc::rng_from_seed(seed);
        (0..n)
            .map(|i| {
                let object = engine.taxonomy().sample_object(&mut rng);
                match i % 5 {
                    0 => Request::FactorizeSingle(
                        encoder.encode_scene(&Scene::single(object)).unwrap(),
                    ),
                    1 => {
                        let scene = engine.taxonomy().sample_scene(2, true, &mut rng);
                        Request::FactorizeMulti(encoder.encode_scene(&scene).unwrap())
                    }
                    2 => Request::FactorizeClasses {
                        scene: encoder.encode_scene(&Scene::single(object)).unwrap(),
                        classes: vec![1],
                    },
                    3 => Request::Membership {
                        scene: encoder
                            .encode_scene(&Scene::single(object.clone()))
                            .unwrap(),
                        items: vec![(1, object.assignment(1).unwrap().clone())],
                        absent: vec![],
                    },
                    _ => Request::EncodeScene(Scene::single(object)),
                }
            })
            .collect()
    }

    fn unwrap_all(results: Vec<Result<Response, EngineError>>) -> Vec<Response> {
        results
            .into_iter()
            .map(|r| r.expect("request succeeds"))
            .collect()
    }

    #[test]
    fn batch_is_bit_identical_to_sequential() {
        let eng = engine(77);
        let requests = mixed_requests(&eng, 15, 1);
        let batched = unwrap_all(eng.execute_batch(&requests));
        let sequential = unwrap_all(eng.execute_sequential(&requests));
        assert_eq!(batched, sequential);
        // And a second (warm-cache) pass does not change anything.
        let warm = unwrap_all(eng.execute_batch(&requests));
        assert_eq!(warm, batched);
    }

    #[test]
    fn responses_recover_the_encoded_objects() {
        let eng = engine(78);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(2);
        let object = eng.taxonomy().sample_object(&mut rng);
        let hv = encoder
            .encode_scene(&Scene::single(object.clone()))
            .unwrap();
        match eng.execute(&Request::FactorizeSingle(hv.clone())).unwrap() {
            Response::Single(decoded) => assert_eq!(decoded.object(), &object),
            other => panic!("wrong variant: {other:?}"),
        }
        match eng
            .execute(&Request::EncodeScene(Scene::single(object)))
            .unwrap()
        {
            Response::Encoded(encoded) => assert_eq!(encoded, hv),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn warm_cache_registers_hits() {
        let eng = engine(79);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(3);
        let scene = eng.taxonomy().sample_scene(2, true, &mut rng);
        let request = Request::FactorizeMulti(encoder.encode_scene(&scene).unwrap());
        let cold = eng.execute(&request).unwrap();
        let after_cold = eng.reconstruction_stats();
        let warm = eng.execute(&request).unwrap();
        let after_warm = eng.reconstruction_stats();
        assert_eq!(cold, warm);
        assert!(after_cold.misses > 0, "cold run must populate the memo");
        assert!(
            after_warm.hits > after_cold.hits,
            "warm run must hit the memo: {after_warm:?}"
        );
    }

    #[test]
    fn set_codebook_after_serving_flushes_reconstructions() {
        // Installing trained prototypes through the engine's own taxonomy
        // accessor must invalidate memoized reconstructions: post-mutation
        // serving must match a freshly built engine over the same model.
        let eng = engine(83);
        let encoder = Encoder::new(eng.taxonomy());
        let mut rng = hdc::rng_from_seed(6);
        let scene = eng.taxonomy().sample_scene(2, true, &mut rng);
        let request = Request::FactorizeMulti(encoder.encode_scene(&scene).unwrap());
        let _ = eng.execute(&request).unwrap(); // populate the memo

        let trained = hdc::Codebook::derive(0xAB, 8, 2048);
        eng.taxonomy()
            .set_codebook(1, &[], trained.clone())
            .unwrap();

        let fresh_taxonomy = taxonomy(83);
        fresh_taxonomy.set_codebook(1, &[], trained).unwrap();
        let fresh = FactorEngine::from_arc(Arc::new(fresh_taxonomy), *eng.config());
        // Re-encode the request against the mutated model so both engines
        // answer the same question.
        let encoder = Encoder::new(eng.taxonomy());
        let request = Request::FactorizeMulti(encoder.encode_scene(&scene).unwrap());
        assert_eq!(
            eng.execute(&request).unwrap(),
            fresh.execute(&request).unwrap(),
            "stale reconstruction served after set_codebook"
        );
    }

    #[test]
    fn dimension_mismatch_surfaces_as_core_error() {
        let eng = engine(80);
        let result = eng.execute(&Request::FactorizeSingle(AccumHv::zeros(64)));
        assert!(matches!(
            result,
            Err(EngineError::Core(FactorHdError::DimensionMismatch { .. }))
        ));
    }

    #[test]
    fn membership_detects_absent_classes() {
        let eng = engine(81);
        let encoder = Encoder::new(eng.taxonomy());
        let object = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![3, 1])),
            None,
            Some(ItemPath::top(5)),
        ]);
        let hv = encoder.encode_scene(&Scene::single(object)).unwrap();
        match eng
            .execute(&Request::Membership {
                scene: hv,
                items: vec![(0, ItemPath::new(vec![3, 1]))],
                absent: vec![1],
            })
            .unwrap()
        {
            Response::Membership(answer) => assert!(answer.present),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn artifact_round_trip_serves_identically() {
        let eng = engine(82);
        let requests = mixed_requests(&eng, 10, 4);
        let mut bytes = Vec::new();
        eng.save_to(&mut bytes).expect("serializes");
        let loaded = FactorEngine::load_from(&mut &bytes[..], *eng.config()).expect("deserializes");
        assert_eq!(
            unwrap_all(eng.execute_batch(&requests)),
            unwrap_all(loaded.execute_batch(&requests)),
        );
    }
}
