//! The `.fhd` model-artifact codec: a hand-rolled, versioned, checksummed
//! binary format persisting a [`Taxonomy`], its codebooks, and (since
//! version 3) trained class prototypes.
//!
//! # Layout (version 3, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  = 89 46 48 44 0D 0A 1A 0A  ("\x89FHD\r\n\x1a\n")
//! 8       2     version (u16) = 3
//! 10      2     flags   (u16) = 0 (reserved)
//! 12      8     dim     (u64)
//! 20      8     seed    (u64)
//! 28      4     class count F (u32)
//!         —     F × class record:
//!                 name length (u32) + UTF-8 name bytes
//!                 level count (u32) + level sizes (u32 each)
//!         4     override count (u32)
//!         —     per override (sorted by class, then parent path):
//!                 class (u32)
//!                 parent depth (u32) + parent indices (u16 each)
//!                 item count m (u32)
//!                 m × ⌈dim/64⌉ packed sign words (u64 each)
//!                 packed-shard geometry: items per shard (u32, ≥ 1)   [v2]
//!         1     prototype presence (u8, 0 or 1)                       [v3]
//!         —     when present, the prototype section:                  [v3]
//!                 prototype dim (u64) + class count C (u32)
//!                 max retained examples (u64)
//!                 retraining epoch counter (u64)
//!                 C × class prototype:
//!                   observation count (u64)
//!                   dim × i32 accumulator components
//! end-8   8     FNV-1a 64 checksum over every preceding byte
//! ```
//!
//! Codebooks that were lazily *derived* from the seed are not stored —
//! they are bit-identically re-derived on demand after loading. Only
//! explicit overrides (e.g. trained prototypes installed with
//! [`Taxonomy::set_codebook`]) carry payload, which keeps artifacts small
//! and guarantees save → load → factorize equals the in-memory model.
//!
//! ## Packed shard tables (version 2)
//!
//! The override payload's word layout is exactly the wire form of the
//! codebook's packed shard table ([`hdc::PackedShards`]): item-major
//! `u64` sign words. Version 2 therefore persists only the missing piece
//! of the table — its shard geometry — and the loader reconstructs the
//! table directly from the payload it is already parsing
//! ([`hdc::Codebook::from_le_bytes_with_shards`]), so a loaded model
//! serves packed scans warm from the first request instead of rebuilding
//! shard tables lazily. Version-1 artifacts still load; their overrides
//! fall back to lazy table construction on first scan.
//!
//! ## Trained prototypes (version 3)
//!
//! Version 3 appends an optional prototype section persisting the
//! *staging* state of an online-learned model
//! ([`factorhd_learn::PrototypeModel`]): the exact integer accumulators,
//! per-class observation counts, and the epoch counter, so a reloaded
//! model classifies — and continues retraining — bit-identically to the
//! saved one. The replay buffer of retained examples is deliberately
//! **not** persisted (it is transient training state, potentially far
//! larger than the model); a reloaded model retrains from an empty
//! retained set. Version-1/2 artifacts still load (no prototypes).

use crate::EngineError;
use factorhd_core::{Taxonomy, TaxonomyBuilder};
use factorhd_learn::{LearnConfig, PrototypeModel};
use hdc::{AccumHv, Codebook};
use std::io::{Read, Write};
use std::path::Path;

/// The `.fhd` magic bytes (PNG-style: high bit, name, CR LF, EOF, LF —
/// catches text-mode mangling and truncation of the very first read).
pub const MAGIC: [u8; 8] = *b"\x89FHD\r\n\x1a\n";

/// The artifact format version this build writes. Readers also accept
/// every version in [`SUPPORTED_VERSIONS`].
pub const VERSION: u16 = 3;

/// Format versions [`parse_model`] accepts: version 1 (no packed-shard
/// geometry; tables rebuild lazily on first scan), version 2 (shard
/// geometry persisted; tables primed at load), and version 3 (optional
/// trained-prototype section).
pub const SUPPORTED_VERSIONS: [u16; 3] = [1, 2, 3];

/// Sanity caps rejecting absurd allocations from corrupt headers.
const MAX_DIM: u64 = 1 << 26;
const MAX_CLASSES: u32 = 1 << 16;
const MAX_NAME_LEN: u32 = 1 << 16;
const MAX_LEVELS: u32 = 64;
const MAX_OVERRIDES: u32 = 1 << 20;
/// Cap on the persisted packed-shard geometry; the value only controls
/// scan chunking, so the cap just rejects obviously corrupt headers.
const MAX_SHARD_LEN: usize = 1 << 20;
/// Cap on the *eager* allocation a header can demand: one label per class
/// plus NULL, `dim` bits each. The per-field caps alone still admit a
/// `dim × classes` product in the hundreds of GiB; this bounds the
/// product (2^28 bits = 32 MiB of packed labels) so a crafted artifact
/// with a valid checksum cannot OOM the loader.
const MAX_MODEL_BITS: u64 = 1 << 28;
/// Cap on the prototype section's eager allocation: `classes × dim`
/// 32-bit accumulator components (2^23 components = 32 MiB).
const MAX_PROTO_COMPONENTS: u64 = 1 << 23;
/// Cap on the persisted replay-buffer bound; the value only bounds
/// future retention (nothing is allocated from it), so the cap just
/// rejects obviously corrupt headers.
const MAX_PROTO_RETAINED: u64 = 1 << 32;

/// FNV-1a 64-bit checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Checks that `taxonomy` fits inside the format's reader-side caps, so
/// that write-success guarantees load-success.
fn check_serializable(taxonomy: &Taxonomy) -> Result<(), EngineError> {
    let reject = |what: String| Err(EngineError::Corrupt(what));
    let dim = taxonomy.dim() as u64;
    if dim > MAX_DIM {
        return reject(format!("dimension {dim} exceeds the format cap {MAX_DIM}"));
    }
    let num_classes = taxonomy.num_classes();
    if num_classes > MAX_CLASSES as usize {
        return reject(format!(
            "{num_classes} classes exceed the format cap {MAX_CLASSES}"
        ));
    }
    if (num_classes as u64 + 1) * dim > MAX_MODEL_BITS {
        return reject(format!(
            "{num_classes} classes × {dim} dimensions exceed the loader's allocation bound"
        ));
    }
    for class in 0..num_classes {
        if taxonomy.class_name(class).len() > MAX_NAME_LEN as usize {
            return reject(format!("class {class} name exceeds {MAX_NAME_LEN} bytes"));
        }
        if taxonomy.levels(class) > MAX_LEVELS as usize {
            return reject(format!(
                "class {class} has {} levels, format cap is {MAX_LEVELS}",
                taxonomy.levels(class)
            ));
        }
    }
    Ok(())
}

/// The prototype-section analogue of [`check_serializable`].
fn check_serializable_prototypes(prototypes: &PrototypeModel) -> Result<(), EngineError> {
    let reject = |what: String| Err(EngineError::Corrupt(what));
    let dim = prototypes.dim() as u64;
    let classes = prototypes.classes() as u64;
    if dim > MAX_DIM {
        return reject(format!(
            "prototype dimension {dim} exceeds the format cap {MAX_DIM}"
        ));
    }
    if classes > MAX_CLASSES as u64 {
        return reject(format!(
            "{classes} prototype classes exceed the format cap {MAX_CLASSES}"
        ));
    }
    if classes * dim > MAX_PROTO_COMPONENTS {
        return reject(format!(
            "{classes} prototype classes × {dim} dimensions exceed the loader's allocation bound"
        ));
    }
    if prototypes.config().max_retained as u64 > MAX_PROTO_RETAINED {
        return reject(format!(
            "prototype max_retained {} exceeds the format cap {MAX_PROTO_RETAINED}",
            prototypes.config().max_retained
        ));
    }
    Ok(())
}

/// Serializes `taxonomy` — and, when given, trained prototypes — into
/// the `.fhd` wire format.
///
/// # Errors
///
/// [`EngineError::Io`] on write failure, or [`EngineError::Corrupt`] when
/// the model exceeds a format cap (a model that would save but then
/// refuse to load is rejected up front — write-success guarantees
/// load-success).
pub fn write_model<W: Write>(
    writer: &mut W,
    taxonomy: &Taxonomy,
    prototypes: Option<&PrototypeModel>,
) -> Result<(), EngineError> {
    check_serializable(taxonomy)?;
    if let Some(prototypes) = prototypes {
        check_serializable_prototypes(prototypes)?;
    }
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes()); // flags
    buf.extend_from_slice(&(taxonomy.dim() as u64).to_le_bytes());
    buf.extend_from_slice(&taxonomy.seed().to_le_bytes());

    buf.extend_from_slice(&(taxonomy.num_classes() as u32).to_le_bytes());
    for class in 0..taxonomy.num_classes() {
        let name = taxonomy.class_name(class).as_bytes();
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name);
        let levels = taxonomy.levels(class);
        buf.extend_from_slice(&(levels as u32).to_le_bytes());
        for level in 0..levels {
            buf.extend_from_slice(&(taxonomy.level_size(class, level) as u32).to_le_bytes());
        }
    }

    let overrides = taxonomy.codebook_overrides();
    buf.extend_from_slice(&(overrides.len() as u32).to_le_bytes());
    for (class, parent, codebook) in overrides {
        buf.extend_from_slice(&(class as u32).to_le_bytes());
        buf.extend_from_slice(&(parent.len() as u32).to_le_bytes());
        for idx in &parent {
            buf.extend_from_slice(&idx.to_le_bytes());
        }
        buf.extend_from_slice(&(codebook.len() as u32).to_le_bytes());
        buf.extend_from_slice(&codebook.to_le_bytes());
        // v2: the shard geometry of the codebook's packed table (built
        // geometry when the view exists, the default for this dimension
        // otherwise — never forces a build).
        buf.extend_from_slice(&(codebook.packed_shard_len() as u32).to_le_bytes());
    }

    // v3: the optional trained-prototype section.
    match prototypes {
        None => buf.push(0u8),
        Some(prototypes) => {
            buf.push(1u8);
            buf.extend_from_slice(&(prototypes.dim() as u64).to_le_bytes());
            buf.extend_from_slice(&(prototypes.classes() as u32).to_le_bytes());
            buf.extend_from_slice(&(prototypes.config().max_retained as u64).to_le_bytes());
            buf.extend_from_slice(&prototypes.epoch().to_le_bytes());
            for (count, accum) in prototypes.counts().iter().zip(prototypes.accumulators()) {
                buf.extend_from_slice(&count.to_le_bytes());
                buf.extend_from_slice(&accum.to_le_bytes());
            }
        }
    }

    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    writer.write_all(&buf)?;
    Ok(())
}

/// Serializes `taxonomy` alone (no prototype section) into the `.fhd`
/// wire format.
///
/// # Errors
///
/// Same conditions as [`write_model`].
pub fn write_taxonomy<W: Write>(writer: &mut W, taxonomy: &Taxonomy) -> Result<(), EngineError> {
    write_model(writer, taxonomy, None)
}

/// Monotonic discriminator making concurrent temp-file names unique
/// within the process (the pid makes them unique across processes).
static SAVE_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Saves a model — taxonomy plus optional trained prototypes — to a
/// `.fhd` file at `path`, **crash-safely**: the artifact is written to a
/// temp file in the same directory, fsynced, and atomically renamed over
/// `path`. A crash (or error) at any point leaves `path` either absent
/// or holding the previous complete artifact — a loader can never
/// observe a torn file at `path` (docs/ROBUSTNESS.md, "Crash-safe
/// artifacts"). An orphaned `*.fhd.tmp-*` sibling may survive a crash;
/// it is inert (loads never look at it) and safe to delete.
///
/// # Errors
///
/// [`EngineError::Io`] on filesystem failure.
pub fn save_model<P: AsRef<Path>>(
    path: P,
    taxonomy: &Taxonomy,
    prototypes: Option<&PrototypeModel>,
) -> Result<(), EngineError> {
    let path = path.as_ref();
    let mut buf: Vec<u8> = Vec::new();
    write_model(&mut buf, taxonomy, prototypes)?;

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp-{}-{}",
        std::process::id(),
        SAVE_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);

    let mut simulated_crash = false;
    let written: Result<(), EngineError> = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        if crate::failpoint::hit("engine/artifact_partial_write") {
            // Chaos site: persist a torn prefix and bail before the
            // rename, exactly what a crash mid-save would leave behind.
            simulated_crash = true;
            file.write_all(&buf[..buf.len() / 2])?;
            file.sync_all()?;
            return Err(EngineError::Io(std::io::Error::other(
                "failpoint engine/artifact_partial_write: simulated crash mid-save",
            )));
        }
        file.write_all(&buf)?;
        // Data must be durable before the rename publishes it: rename
        // before fsync could surface a complete-looking but unflushed
        // file after a power cut.
        file.sync_all()?;
        Ok(())
    })();
    if let Err(err) = written {
        // A simulated crash deliberately leaves its torn temp file (a
        // real crash could not clean up either); ordinary failures tidy
        // it. Either way `path` is untouched.
        if !simulated_crash {
            let _ = std::fs::remove_file(&tmp);
        }
        return Err(err);
    }
    if let Err(err) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(EngineError::Io(err));
    }
    // Make the rename itself durable (best-effort: directory fsync is
    // not supported everywhere, and the rename has already succeeded).
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = std::fs::File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Saves `taxonomy` to a `.fhd` file at `path`.
///
/// # Errors
///
/// [`EngineError::Io`] on filesystem failure.
pub fn save_taxonomy<P: AsRef<Path>>(path: P, taxonomy: &Taxonomy) -> Result<(), EngineError> {
    save_model(path, taxonomy, None)
}

/// Deserializes a model from `.fhd` bytes produced by [`write_model`],
/// verifying magic, version, and checksum before touching the payload.
/// The second tuple element carries the trained prototypes of a
/// version-3 artifact that has them, `None` otherwise.
///
/// # Errors
///
/// Every corruption mode maps to a typed [`EngineError`]: wrong magic →
/// [`EngineError::BadMagic`], unknown version →
/// [`EngineError::UnsupportedVersion`], flipped or missing bytes →
/// [`EngineError::ChecksumMismatch`] / [`EngineError::Truncated`],
/// structurally invalid contents → [`EngineError::Corrupt`] or
/// [`EngineError::Core`].
pub fn read_model<R: Read>(
    reader: &mut R,
) -> Result<(Taxonomy, Option<PrototypeModel>), EngineError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_model(&bytes)
}

/// Loads a model — taxonomy plus optional trained prototypes — from a
/// `.fhd` file at `path`.
///
/// # Errors
///
/// Same conditions as [`read_model`], plus [`EngineError::Io`] on
/// filesystem failure.
pub fn load_model<P: AsRef<Path>>(
    path: P,
) -> Result<(Taxonomy, Option<PrototypeModel>), EngineError> {
    let mut file = std::fs::File::open(path)?;
    read_model(&mut file)
}

/// Deserializes a taxonomy from `.fhd` bytes, discarding any prototype
/// section; see [`read_model`].
///
/// # Errors
///
/// Same conditions as [`read_model`].
pub fn read_taxonomy<R: Read>(reader: &mut R) -> Result<Taxonomy, EngineError> {
    Ok(read_model(reader)?.0)
}

/// Loads a taxonomy from a `.fhd` file at `path`.
///
/// # Errors
///
/// Same conditions as [`read_taxonomy`], plus [`EngineError::Io`] on
/// filesystem failure.
pub fn load_taxonomy<P: AsRef<Path>>(path: P) -> Result<Taxonomy, EngineError> {
    Ok(load_model(path)?.0)
}

/// Parses an in-memory `.fhd` byte buffer, discarding any prototype
/// section; see [`parse_model`].
///
/// # Errors
///
/// Same conditions as [`parse_model`].
pub fn parse_taxonomy(bytes: &[u8]) -> Result<Taxonomy, EngineError> {
    Ok(parse_model(bytes)?.0)
}

/// Parses an in-memory `.fhd` byte buffer into a taxonomy and, when the
/// artifact carries one, the trained prototype model.
///
/// # Errors
///
/// Same conditions as [`read_model`].
pub fn parse_model(bytes: &[u8]) -> Result<(Taxonomy, Option<PrototypeModel>), EngineError> {
    if bytes.len() < MAGIC.len() {
        return Err(EngineError::Truncated {
            needed: MAGIC.len() - bytes.len(),
            remaining: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(EngineError::BadMagic { found });
    }
    // Minimum frame: magic + version + flags + checksum.
    if bytes.len() < 8 + 2 + 2 + 8 {
        return Err(EngineError::Truncated {
            needed: (8 + 2 + 2 + 8) - bytes.len(),
            remaining: bytes.len() - MAGIC.len(),
        });
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if !SUPPORTED_VERSIONS.contains(&version) {
        return Err(EngineError::UnsupportedVersion(version));
    }
    // The flags field is reserved: rejecting non-zero values now is what
    // lets a future writer use it for compatibility signaling.
    let flags = u16::from_le_bytes([bytes[10], bytes[11]]);
    if flags != 0 {
        return Err(EngineError::Corrupt(format!(
            "unknown flags {flags:#06x} (reserved field must be zero)"
        )));
    }
    let body = &bytes[..bytes.len() - 8];
    // Cannot fire: the length check above guarantees at least 8 bytes,
    // and an 8-byte range slice always converts to `[u8; 8]`.
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(EngineError::ChecksumMismatch { stored, computed });
    }

    let mut cursor = Cursor {
        buf: body,
        pos: 12, // past magic + version + flags
    };
    let dim = cursor.u64()?;
    if dim == 0 || dim > MAX_DIM {
        return Err(EngineError::Corrupt(format!(
            "dimension {dim} out of range"
        )));
    }
    let seed = cursor.u64()?;

    let num_classes = cursor.u32()?;
    if num_classes == 0 || num_classes > MAX_CLASSES {
        return Err(EngineError::Corrupt(format!(
            "class count {num_classes} out of range"
        )));
    }
    if (num_classes as u64 + 1) * dim > MAX_MODEL_BITS {
        return Err(EngineError::Corrupt(format!(
            "declared model of {num_classes} classes × {dim} dimensions \
             exceeds the loader's allocation bound"
        )));
    }
    let mut builder = TaxonomyBuilder::new(dim as usize).seed(seed);
    for _ in 0..num_classes {
        let name_len = cursor.u32()?;
        if name_len > MAX_NAME_LEN {
            return Err(EngineError::Corrupt(format!(
                "class name of {name_len} bytes out of range"
            )));
        }
        let name_bytes = cursor.take(name_len as usize)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| EngineError::Corrupt("class name is not valid UTF-8".into()))?
            .to_owned();
        let num_levels = cursor.u32()?;
        if num_levels == 0 || num_levels > MAX_LEVELS {
            return Err(EngineError::Corrupt(format!(
                "level count {num_levels} out of range"
            )));
        }
        let mut level_sizes = Vec::with_capacity(num_levels as usize);
        for _ in 0..num_levels {
            level_sizes.push(cursor.u32()? as usize);
        }
        builder = builder.class(&name, &level_sizes);
    }
    let taxonomy = builder.build()?;

    let num_overrides = cursor.u32()?;
    if num_overrides > MAX_OVERRIDES {
        return Err(EngineError::Corrupt(format!(
            "override count {num_overrides} out of range"
        )));
    }
    for _ in 0..num_overrides {
        let class = cursor.u32()? as usize;
        let depth = cursor.u32()?;
        if depth > MAX_LEVELS {
            return Err(EngineError::Corrupt(format!(
                "override parent depth {depth} out of range"
            )));
        }
        let mut parent = Vec::with_capacity(depth as usize);
        for _ in 0..depth {
            parent.push(cursor.u16()?);
        }
        let m = cursor.u32()? as usize;
        let payload = cursor.take(Codebook::byte_len(m, dim as usize))?;
        let codebook = if version >= 2 {
            // The payload's word layout is the packed shard table's wire
            // form; reconstruct the table at its persisted geometry so
            // packed scans are warm from the first request.
            let shard_len = cursor.u32()? as usize;
            if shard_len == 0 || shard_len > MAX_SHARD_LEN {
                return Err(EngineError::Corrupt(format!(
                    "packed shard length {shard_len} out of range"
                )));
            }
            Codebook::from_le_bytes_with_shards(m, dim as usize, payload, shard_len)?
        } else {
            Codebook::from_le_bytes(m, dim as usize, payload)?
        };
        taxonomy.set_codebook(class, &parent, codebook)?;
    }

    // v3: the optional trained-prototype section.
    let prototypes = if version >= 3 {
        match cursor.take(1)?[0] {
            0 => None,
            1 => Some(parse_prototypes(&mut cursor)?),
            other => {
                return Err(EngineError::Corrupt(format!(
                    "prototype presence flag {other} (must be 0 or 1)"
                )))
            }
        }
    } else {
        None
    };

    if cursor.pos != body.len() {
        return Err(EngineError::Corrupt(format!(
            "{} trailing bytes after the last section",
            body.len() - cursor.pos
        )));
    }
    Ok((taxonomy, prototypes))
}

/// Parses the version-3 prototype section at `cursor`.
fn parse_prototypes(cursor: &mut Cursor<'_>) -> Result<PrototypeModel, EngineError> {
    let dim = cursor.u64()?;
    if dim == 0 || dim > MAX_DIM {
        return Err(EngineError::Corrupt(format!(
            "prototype dimension {dim} out of range"
        )));
    }
    let classes = cursor.u32()?;
    if classes == 0 || classes > MAX_CLASSES {
        return Err(EngineError::Corrupt(format!(
            "prototype class count {classes} out of range"
        )));
    }
    if classes as u64 * dim > MAX_PROTO_COMPONENTS {
        return Err(EngineError::Corrupt(format!(
            "declared prototype section of {classes} classes × {dim} dimensions \
             exceeds the loader's allocation bound"
        )));
    }
    let max_retained = cursor.u64()?;
    if max_retained > MAX_PROTO_RETAINED {
        return Err(EngineError::Corrupt(format!(
            "prototype max_retained {max_retained} out of range"
        )));
    }
    let epoch = cursor.u64()?;
    let mut counts = Vec::with_capacity(classes as usize);
    let mut accums = Vec::with_capacity(classes as usize);
    for _ in 0..classes {
        counts.push(cursor.u64()?);
        let payload = cursor.take(AccumHv::byte_len(dim as usize))?;
        accums.push(AccumHv::from_le_bytes(dim as usize, payload)?);
    }
    let config = LearnConfig {
        classes: classes as usize,
        dim: dim as usize,
        max_retained: max_retained as usize,
    };
    PrototypeModel::from_parts(config, accums, counts, epoch)
        .map_err(|e| EngineError::Corrupt(format!("prototype section: {e}")))
}

/// Bounds-checked little-endian reader over the artifact body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(EngineError::Truncated {
                needed: n - remaining,
                remaining,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    // The `expect`s below cannot fire: `take(n)` either returns exactly
    // `n` bytes or a typed `Truncated` error, so the slice length always
    // matches the array the integer is built from.

    fn u16(&mut self) -> Result<u16, EngineError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorhd_core::ItemPath;

    fn sample_taxonomy() -> Taxonomy {
        let t = TaxonomyBuilder::new(512)
            .seed(1234)
            .class("animal", &[8, 4])
            .class("color", &[8])
            .build()
            .expect("valid taxonomy");
        t.set_codebook(1, &[], Codebook::derive(0xFACE, 8, 512))
            .expect("valid override");
        t
    }

    fn to_bytes(taxonomy: &Taxonomy) -> Vec<u8> {
        let mut buf = Vec::new();
        write_taxonomy(&mut buf, taxonomy).expect("write to vec");
        buf
    }

    #[test]
    fn round_trip_preserves_model_state() {
        let original = sample_taxonomy();
        let bytes = to_bytes(&original);
        let loaded = parse_taxonomy(&bytes).expect("parses");
        assert_eq!(loaded.dim(), original.dim());
        assert_eq!(loaded.seed(), original.seed());
        assert_eq!(loaded.num_classes(), original.num_classes());
        for class in 0..original.num_classes() {
            assert_eq!(loaded.class_name(class), original.class_name(class));
            assert_eq!(loaded.levels(class), original.levels(class));
            assert_eq!(loaded.label(class), original.label(class));
        }
        assert_eq!(loaded.null_hv(), original.null_hv());
        // Derived codebooks re-derive identically; overrides are restored.
        assert_eq!(
            loaded.codebook(0, &[3]).unwrap().as_ref(),
            original.codebook(0, &[3]).unwrap().as_ref()
        );
        assert_eq!(
            loaded.codebook(1, &[]).unwrap().as_ref(),
            original.codebook(1, &[]).unwrap().as_ref()
        );
        assert_eq!(
            loaded.item_hv(1, &ItemPath::top(3)).unwrap(),
            original.item_hv(1, &ItemPath::top(3)).unwrap()
        );
        // Serializing the loaded model reproduces the bytes exactly.
        assert_eq!(to_bytes(&loaded), bytes);
    }

    #[test]
    fn reader_round_trip_matches_parse() {
        let original = sample_taxonomy();
        let bytes = to_bytes(&original);
        let from_reader = read_taxonomy(&mut &bytes[..]).expect("reads");
        assert_eq!(from_reader.label(0), original.label(0));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = to_bytes(&sample_taxonomy());
        bytes[0] = b'X';
        assert!(matches!(
            parse_taxonomy(&bytes),
            Err(EngineError::BadMagic { .. })
        ));
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = to_bytes(&sample_taxonomy());
        bytes[8] = 99;
        assert!(matches!(
            parse_taxonomy(&bytes),
            Err(EngineError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn nonzero_reserved_flags_rejected() {
        let bytes = to_bytes(&sample_taxonomy());
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body[10] = 0x01;
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_taxonomy(&body),
            Err(EngineError::Corrupt(_))
        ));
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let mut bytes = to_bytes(&sample_taxonomy());
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0x40;
        assert!(matches!(
            parse_taxonomy(&bytes),
            Err(EngineError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn flipped_checksum_fails_checksum() {
        let mut bytes = to_bytes(&sample_taxonomy());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            parse_taxonomy(&bytes),
            Err(EngineError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = to_bytes(&sample_taxonomy());
        for cut in 0..bytes.len() {
            let err = parse_taxonomy(&bytes[..cut]).expect_err("truncated artifact must fail");
            assert!(
                matches!(
                    err,
                    EngineError::Truncated { .. } | EngineError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        // Append a byte inside the checksummed region by rebuilding the
        // frame: body + junk + recomputed checksum.
        let bytes = to_bytes(&sample_taxonomy());
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body.push(0xAB);
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_taxonomy(&body),
            Err(EngineError::Truncated { .. }) | Err(EngineError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_counts_rejected_without_allocation_blowup() {
        // Rewrite the class count to an absurd value and fix the checksum.
        let bytes = to_bytes(&sample_taxonomy());
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_taxonomy(&body),
            Err(EngineError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_dim_times_classes_rejected_before_allocation() {
        // dim and class count each pass their per-field caps, but their
        // product would demand gigabytes of eager label allocation; the
        // loader must refuse with a typed error instead of OOMing.
        let bytes = to_bytes(&sample_taxonomy());
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body[12..20].copy_from_slice(&((1u64 << 26) - 64).to_le_bytes()); // dim
        body[28..32].copy_from_slice(&60_000u32.to_le_bytes()); // classes
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_taxonomy(&body),
            Err(EngineError::Corrupt(_))
        ));
    }

    #[test]
    fn unserializable_model_rejected_at_write_time() {
        // 65 levels is buildable in memory but beyond the format's
        // MAX_LEVELS read cap; writing must fail up front instead of
        // producing an artifact that refuses to load.
        let deep = TaxonomyBuilder::new(64)
            .class("deep", &vec![2; 65])
            .build()
            .expect("builder permits deep hierarchies");
        let mut buf = Vec::new();
        assert!(matches!(
            write_taxonomy(&mut buf, &deep),
            Err(EngineError::Corrupt(_))
        ));
        assert!(buf.is_empty(), "nothing may be written on rejection");
    }

    /// Strips the v3 prototype-presence byte (the last body byte of a
    /// prototype-free artifact) and rewrites the version to 2, producing
    /// a valid version-2 artifact from a version-3 one.
    fn downgrade_to_v2(bytes: &[u8]) -> Vec<u8> {
        let mut body = bytes[..bytes.len() - 8 - 1].to_vec();
        body[8..10].copy_from_slice(&2u16.to_le_bytes());
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        body
    }

    /// Additionally strips the per-override shard-geometry fields and
    /// rewrites the version to 1, producing a valid version-1 artifact.
    /// The sample taxonomy has exactly one override, so the geometry
    /// field is the last 4 bytes of the version-2 body.
    fn downgrade_to_v1(bytes: &[u8]) -> Vec<u8> {
        let v2 = downgrade_to_v2(bytes);
        let mut body = v2[..v2.len() - 8 - 4].to_vec();
        body[8..10].copy_from_slice(&1u16.to_le_bytes());
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        body
    }

    #[test]
    fn v2_overrides_load_with_primed_shard_tables() {
        let loaded = parse_taxonomy(&to_bytes(&sample_taxonomy())).expect("parses");
        // The persisted override arrives with its packed table built…
        assert!(loaded.codebook(1, &[]).unwrap().packed_view_ready());
        // …while seed-derived codebooks still build theirs lazily.
        assert!(!loaded.codebook(0, &[3]).unwrap().packed_view_ready());
    }

    #[test]
    fn v1_artifacts_still_load() {
        let original = sample_taxonomy();
        let v1 = downgrade_to_v1(&to_bytes(&original));
        let loaded = parse_taxonomy(&v1).expect("version 1 parses");
        let cb = loaded.codebook(1, &[]).unwrap();
        // No geometry persisted: the table builds lazily on first scan.
        assert!(!cb.packed_view_ready());
        assert_eq!(cb.as_ref(), original.codebook(1, &[]).unwrap().as_ref());
        // Re-serializing a v1-loaded model writes the current version.
        let upgraded = to_bytes(&loaded);
        assert_eq!(upgraded, to_bytes(&original));
    }

    #[test]
    fn corrupt_shard_geometry_rejected() {
        // The geometry field sits just before the v3 presence byte.
        let bytes = to_bytes(&sample_taxonomy());
        let mut body = bytes[..bytes.len() - 8].to_vec();
        let geometry_at = body.len() - 1 - 4;
        body[geometry_at..geometry_at + 4].copy_from_slice(&0u32.to_le_bytes());
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            parse_taxonomy(&body),
            Err(EngineError::Corrupt(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let original = sample_taxonomy();
        let path = std::env::temp_dir().join("factorhd_artifact_test.fhd");
        save_taxonomy(&path, &original).expect("saves");
        let loaded = load_taxonomy(&path).expect("loads");
        assert_eq!(loaded.label(0), original.label(0));
        let _ = std::fs::remove_file(&path);
    }

    /// A trained prototype model with non-trivial accumulators.
    fn sample_prototypes() -> PrototypeModel {
        let mut model = PrototypeModel::new(LearnConfig::new(3, 64)).expect("valid");
        let mut rng = hdc::rng_from_seed(99);
        use rand::Rng;
        for sample in 0..30u64 {
            let class = (sample % 3) as usize;
            let example = AccumHv::from_components(
                (0..64)
                    .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
                    .collect(),
            );
            model.observe(class, sample, &example, true).expect("valid");
        }
        model.retrain(3);
        model
    }

    fn model_to_bytes(taxonomy: &Taxonomy, prototypes: Option<&PrototypeModel>) -> Vec<u8> {
        let mut buf = Vec::new();
        write_model(&mut buf, taxonomy, prototypes).expect("write to vec");
        buf
    }

    #[test]
    fn prototype_round_trip_is_bit_identical() {
        let taxonomy = sample_taxonomy();
        let prototypes = sample_prototypes();
        let bytes = model_to_bytes(&taxonomy, Some(&prototypes));
        let (loaded_taxonomy, loaded_prototypes) = parse_model(&bytes).expect("parses");
        let loaded_prototypes = loaded_prototypes.expect("prototype section present");
        assert_eq!(loaded_taxonomy.label(0), taxonomy.label(0));
        assert_eq!(loaded_prototypes.accumulators(), prototypes.accumulators());
        assert_eq!(loaded_prototypes.counts(), prototypes.counts());
        assert_eq!(loaded_prototypes.epoch(), prototypes.epoch());
        assert_eq!(loaded_prototypes.config(), prototypes.config());
        // The replay buffer is transient state and is not persisted.
        assert_eq!(loaded_prototypes.retained(), 0);
        // Re-serializing reproduces the bytes exactly.
        assert_eq!(
            model_to_bytes(&loaded_taxonomy, Some(&loaded_prototypes)),
            bytes
        );
    }

    #[test]
    fn prototype_free_v3_artifacts_parse_to_none() {
        let (_, prototypes) = parse_model(&to_bytes(&sample_taxonomy())).expect("parses");
        assert!(prototypes.is_none());
    }

    #[test]
    fn v2_and_v1_artifacts_parse_to_no_prototypes() {
        let bytes = to_bytes(&sample_taxonomy());
        for old in [downgrade_to_v2(&bytes), downgrade_to_v1(&bytes)] {
            let (taxonomy, prototypes) = parse_model(&old).expect("old version parses");
            assert_eq!(taxonomy.num_classes(), 2);
            assert!(prototypes.is_none());
        }
    }

    #[test]
    fn corrupt_presence_flag_rejected() {
        let bytes = to_bytes(&sample_taxonomy());
        let mut body = bytes[..bytes.len() - 8].to_vec();
        let presence_at = body.len() - 1;
        body[presence_at] = 7;
        let checksum = fnv1a(&body);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(parse_model(&body), Err(EngineError::Corrupt(_))));
    }

    #[test]
    fn prototype_truncation_is_typed_at_every_length() {
        let bytes = model_to_bytes(&sample_taxonomy(), Some(&sample_prototypes()));
        for cut in 0..bytes.len() {
            let err = parse_model(&bytes[..cut]).expect_err("truncated artifact must fail");
            assert!(
                matches!(
                    err,
                    EngineError::Truncated { .. } | EngineError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn prototype_flipped_byte_fails_checksum() {
        let mut bytes = model_to_bytes(&sample_taxonomy(), Some(&sample_prototypes()));
        // Flip a byte inside the prototype section (last 16 bytes of the
        // body are deep inside the final accumulator).
        let inside = bytes.len() - 8 - 16;
        bytes[inside] ^= 0x20;
        assert!(matches!(
            parse_model(&bytes),
            Err(EngineError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_prototype_section_rejected_at_write_time() {
        // classes × dim passes the per-field caps but exceeds the
        // allocation bound; writing must refuse up front.
        let config = LearnConfig {
            classes: 1 << 12,
            dim: 1 << 12,
            max_retained: 16,
        };
        let prototypes = PrototypeModel::new(config).expect("valid in memory");
        let mut buf = Vec::new();
        assert!(matches!(
            write_model(&mut buf, &sample_taxonomy(), Some(&prototypes)),
            Err(EngineError::Corrupt(_))
        ));
        assert!(buf.is_empty(), "nothing may be written on rejection");
    }

    #[test]
    fn model_file_round_trip() {
        let taxonomy = sample_taxonomy();
        let prototypes = sample_prototypes();
        let path = std::env::temp_dir().join("factorhd_artifact_proto_test.fhd");
        save_model(&path, &taxonomy, Some(&prototypes)).expect("saves");
        let (_, loaded) = load_model(&path).expect("loads");
        assert_eq!(
            loaded.expect("present").accumulators(),
            prototypes.accumulators()
        );
        let _ = std::fs::remove_file(&path);
    }
}
