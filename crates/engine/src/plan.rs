//! The batch planner: groups heterogeneous typed ops by `(model, op
//! kind)` so packed-shard scans stay contiguous, then fans the groups out
//! across the worker pool — results in input order, bit-identical to a
//! sequential loop.
//!
//! Grouping is pure bookkeeping over op indices: every op is still
//! computed by the same pure `(op, model)` function a sequential loop
//! would call, and the grouped Rep-1/Rep-2 kernel is itself bit-identical
//! to its per-op form ([`factorhd_core::Factorizer::factorize_single_many`]),
//! so the plan can only change *when* work happens, never *what* it
//! produces. Groupable kinds are chunked **adaptively** (see
//! [`task_chunk`]): the group splits into about two tasks per pool lane,
//! never below the [`crate::EngineConfig::batch_chunk`] amortization
//! floor, and a single-lane pool keeps the whole group as one task so one
//! tiled codebook traversal serves the entire batch. Other kinds run one
//! op per task to keep the pool saturated with their coarser work items.
//!
//! Every task runs under **panic containment** ([`run_contained_group`]):
//! a panic inside an op never crosses the pool boundary — it becomes a
//! typed [`EngineError::OpPanicked`] on that op alone while the rest of
//! the batch completes, and costs one relaxed atomic load per group when
//! no failpoint is armed.
//!
//! Scratch plumbing: the codebook scans under every task run on `hdc`'s
//! per-thread scan scratch (`PackedShards::top_k_into` /
//! `top_k_many_into`), so each rayon worker warms its own buffer set on
//! its first task and steady-state batch execution performs
//! zero-allocation scans — no scratch handles need to travel through the
//! plan. Grouping same-kind ops onto one worker additionally keeps that
//! worker's scratch sized for the op shape it keeps serving.

use crate::failpoint;
use crate::metrics::{self, Stage, StageTimer};
use crate::ops::{run_any_group, AnyOp, AnyOutput, Op, OpKind};
use crate::{EngineError, ModelState};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// One planned task's scatter payload: the op indices it covered and
/// their results, in matching order.
type TaskOutput = (Vec<usize>, Vec<Result<AnyOutput, EngineError>>);

/// Ops per task for a group of `len` ops of one kind.
///
/// Non-groupable ops run one per task (their per-op cost is coarse enough
/// to keep the pool busy, and finer tasks balance better under the pool's
/// claim-based scheduling). Groupable groups split into about **two tasks
/// per pool lane** — adaptive to both the batch size and the pool size —
/// so a big batch never shatters into hundreds of tiny fixed-size chunks
/// whose scatter overhead outgrows their scan work (the batch-512
/// rollover), while still leaving enough tasks for the claim counter to
/// balance lanes. `batch_chunk` acts as the amortization floor: a chunk
/// is never smaller, so each task still amortizes one tiled codebook
/// traversal. On a single-lane pool the whole group is one task — one
/// traversal serves the entire batch.
///
/// Chunk boundaries never affect results: the grouped kernels are
/// bit-identical to their per-op forms at any chunk size, so this is
/// purely a scheduling decision.
pub(crate) fn task_chunk(groupable: bool, len: usize, batch_chunk: usize) -> usize {
    if !groupable {
        return 1;
    }
    let threads = rayon::current_num_threads();
    if threads <= 1 {
        return len.max(1);
    }
    len.div_ceil(threads * 2).max(batch_chunk)
}

/// Extracts a human-readable message from a panic payload (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one op under panic containment: a panic anywhere in the op (or
/// a matching `engine/op_panic` failpoint) becomes
/// [`EngineError::OpPanicked`] for this op alone.
fn run_contained_one(state: &ModelState, op: &AnyOp) -> Result<AnyOutput, EngineError> {
    match catch_unwind(AssertUnwindSafe(|| {
        if failpoint::armed() && failpoint::hit_tag("engine/op_panic", op.chaos_tag()) {
            panic!("failpoint engine/op_panic fired for tag {}", op.chaos_tag());
        }
        op.run(state)
    })) {
        Ok(result) => result,
        Err(payload) => Err(EngineError::OpPanicked {
            message: panic_message(payload),
        }),
    }
}

/// Runs a same-kind group under panic containment. The grouped kernel
/// executes inside one `catch_unwind`; if anything in it panics, the
/// group falls back to per-op execution with each op individually
/// contained, so exactly the poisoned ops come back as
/// [`EngineError::OpPanicked`] while their chunk-mates complete. The
/// per-op fallback is bit-identical to the grouped kernel (the planner's
/// standing guarantee), so containment never changes successful outputs.
///
/// The fallback re-runs the group's ops from scratch. Every kind except
/// `Train`/`Retrain` is a pure read, so the re-run is invisible; a
/// kernel panicking halfway through a *training* group may re-apply
/// examples observed before the panic (at-least-once semantics under a
/// mid-group panic — see docs/ROBUSTNESS.md, "Panic containment").
fn run_contained_group(
    state: &ModelState,
    kind: OpKind,
    refs: &[&AnyOp],
) -> Vec<Result<AnyOutput, EngineError>> {
    let group = catch_unwind(AssertUnwindSafe(|| {
        if failpoint::armed() {
            for op in refs {
                if failpoint::hit_tag("engine/op_panic", op.chaos_tag()) {
                    panic!("failpoint engine/op_panic fired for tag {}", op.chaos_tag());
                }
            }
        }
        run_any_group(state, kind, refs)
    }));
    match group {
        Ok(results) => results,
        Err(_) => refs.iter().map(|op| run_contained_one(state, op)).collect(),
    }
}

/// Executes `ops` — each tagged with the slot of the model it targets —
/// grouped by `(slot, kind)`. `states[slot]` is the resolved model for
/// that slot (`None` → every op of the slot fails with
/// [`EngineError::UnknownModel`] naming `slot_names[slot]` and listing
/// `registered`, the ids installed when the batch was snapshotted).
pub(crate) fn execute_batch_planned(
    ops: &[(usize, &AnyOp)],
    states: &[Option<Arc<ModelState>>],
    slot_names: &[String],
    registered: &[String],
) -> Vec<Result<AnyOutput, EngineError>> {
    metrics::record_batch_size(ops.len() as u64);
    let plan_span = StageTimer::enter(Stage::Plan);
    let mut results: Vec<Option<Result<AnyOutput, EngineError>>> =
        ops.iter().map(|_| None).collect();

    // Group op indices by (model slot, kind); BTreeMap keeps the group
    // (and therefore task) order deterministic.
    let mut groups: BTreeMap<(usize, OpKind), Vec<usize>> = BTreeMap::new();
    for (i, (slot, op)) in ops.iter().enumerate() {
        if states[*slot].is_none() {
            metrics::record_submitted(op.kind(), 1);
            metrics::record_outcomes(op.kind(), 0, 1);
            results[i] = Some(Err(EngineError::UnknownModel {
                name: slot_names[*slot].clone(),
                registered: registered.to_vec(),
            }));
            continue;
        }
        groups.entry((*slot, op.kind())).or_default().push(i);
    }

    // One task per adaptive chunk of a groupable group, one per op
    // otherwise. `batch_chunk` is already validated ≥ 1
    // ([`crate::EngineConfig::validate`] is the single point of truth —
    // no defensive clamping here).
    let mut tasks: Vec<(usize, OpKind, Vec<usize>)> = Vec::new();
    for ((slot, kind), indices) in groups {
        metrics::record_submitted(kind, indices.len() as u64);
        let state = states[slot].as_ref().expect("grouped slots are resolved");
        let chunk = task_chunk(kind.groupable(), indices.len(), state.config().batch_chunk);
        for piece in indices.chunks(chunk) {
            if kind.groupable() {
                metrics::record_chunk_size(piece.len() as u64);
            }
            tasks.push((slot, kind, piece.to_vec()));
        }
    }
    drop(plan_span);

    let outputs: Vec<TaskOutput> = tasks
        .par_iter()
        .map(|(slot, kind, indices)| {
            let state = states[*slot].as_ref().expect("resolved");
            let refs: Vec<&AnyOp> = indices.iter().map(|&i| ops[i].1).collect();
            let started = metrics::now();
            let group_results = run_contained_group(state, *kind, &refs);
            let completed = group_results.iter().filter(|r| r.is_ok()).count() as u64;
            metrics::record_outcomes(*kind, completed, indices.len() as u64 - completed);
            if let Some(started) = started {
                let nanos = started.elapsed().as_nanos() as u64;
                metrics::record_group_nanos(*kind, indices.len() as u64, nanos);
            }
            (indices.clone(), group_results)
        })
        .collect();

    let scatter_span = StageTimer::enter(Stage::Scatter);
    for (indices, group_results) in outputs {
        for (i, result) in indices.into_iter().zip(group_results) {
            results[i] = Some(result);
        }
    }
    let gathered = results
        .into_iter()
        // Cannot fire: the planner partitions `0..ops.len()` into task
        // index lists exactly once, and every task writes back exactly
        // its own indices, so each slot is `Some` after the scatter.
        .map(|slot| slot.expect("every op planned exactly once"))
        .collect();
    drop(scatter_span);
    gathered
}

/// Single-model planner: every op targets `model`.
pub(crate) fn execute_mixed(
    model: &Arc<ModelState>,
    ops: &[AnyOp],
) -> Vec<Result<AnyOutput, EngineError>> {
    let tagged: Vec<(usize, &AnyOp)> = ops.iter().map(|op| (0usize, op)).collect();
    execute_batch_planned(&tagged, &[Some(Arc::clone(model))], &[String::new()], &[])
}
