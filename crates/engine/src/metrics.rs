//! Zero-allocation engine telemetry: per-op counters, log2 latency
//! histograms, per-model counters, and per-stage timing.
//!
//! Everything in this module is a process-global, statically allocated
//! table of atomics — counters are sharded across cache-line-padded
//! slots to keep the worker pool from bouncing one line, histograms are
//! fixed `[AtomicU64; 40]` bucket arrays, and the per-model table is a
//! fixed array claimed by compare-and-swap. **Nothing on the record
//! path allocates, locks, or blocks**: a record is one or two relaxed
//! atomic adds (verified by `crates/engine/tests/alloc_steady_state.rs`
//! and the hdc steady-state scan test).
//!
//! Recording is governed by the same switch as the stage timers
//! ([`set_metrics_recording`], re-exported from `hdc::stage`): when the
//! switch is off — or the whole layer is compiled out with the
//! `metrics-off` cargo feature — every record path short-circuits after
//! a single relaxed load and [`now`] never reads the clock. Telemetry
//! never influences computation: outputs are bit-identical with
//! recording on, off, or compiled out (`tests/determinism.rs`).
//!
//! [`snapshot`] copies the tables out into a plain-data
//! [`MetricsSnapshot`]; the bench crate serializes it into
//! `BENCH_engine.json` (schema v3) and `bench_gate` diffs the p95s
//! against committed baselines. Metric names, bucket layout, and the
//! overhead budget are documented in `docs/OBSERVABILITY.md`.

use crate::ops::OpKind;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

pub use hdc::stage::{
    metrics_compiled_out, metrics_recording, reset_stage_totals, set_metrics_recording,
    stage_totals, Stage, StageTimer, StageTotal, STAGE_COUNT,
};

/// Number of histogram buckets. Bucket `i` counts values whose bit
/// width is `i` (i.e. `v == 0` → bucket 0, otherwise
/// `2^(i-1) <= v < 2^i`), with the last bucket absorbing everything of
/// `2^(BUCKETS-1)` and above — for nanosecond latencies that is ≈ 9
/// minutes, far past any op this engine runs.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Number of counter shards per metric: threads are striped across
/// shards to keep relaxed increments from contending on one cache line.
const COUNTER_SHARDS: usize = 8;

/// Capacity of the fixed per-model counter table. Installs beyond this
/// many distinct generations accumulate in the `model_overflow` counter
/// instead of being dropped silently.
pub const MODEL_SLOTS: usize = 32;

/// The model-table key for ops run outside the registry (a plain
/// [`crate::FactorEngine`] with no generation stamp).
pub const UNREGISTERED_GENERATION: u64 = 0;

/// Sentinel marking an unclaimed per-model slot.
const EMPTY_SLOT: u64 = u64::MAX;

/// One cache line of counter, so sharded counters never share a line.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// A counter striped over [`COUNTER_SHARDS`] cache-line-padded atomics;
/// each thread sticks to the shard it drew on first use.
struct ShardedCounter {
    shards: [PaddedCounter; COUNTER_SHARDS],
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index; `usize::MAX` until first use.
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn my_shard() -> usize {
    MY_SHARD.with(|cell| {
        let claimed = cell.get();
        if claimed != usize::MAX {
            return claimed;
        }
        let drawn = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        cell.set(drawn);
        drawn
    })
}

impl ShardedCounter {
    const fn new() -> Self {
        ShardedCounter {
            shards: [const { PaddedCounter(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    #[inline]
    fn add(&self, n: u64) {
        self.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for shard in &self.shards {
            shard.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A fixed-bucket log2 histogram: bucket = bit width of the recorded
/// value (see [`HISTOGRAM_BUCKETS`]). Recording is one relaxed
/// `fetch_add`; quantiles are extracted from a copied-out
/// [`HistogramSnapshot`] as the conservative (upper-bound) edge of the
/// bucket holding the requested rank.
struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Index of the bucket `value` falls into.
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()).min(HISTOGRAM_BUCKETS as u32 - 1) as usize
}

/// Inclusive upper bound of bucket `index` (what quantiles report).
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations of `value` in one add — how
    /// grouped-chunk latency attributes its per-op shares.
    #[inline]
    fn record_n(&self, value: u64, n: u64) {
        self.buckets[bucket_of(value)].fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot::from_buckets(buckets)
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// A standalone log2 histogram sharing the engine's bucket scheme and
/// recording switch, for subsystems layered on top of the engine (the
/// network front end records coalesced-batch sizes and end-to-end
/// latencies through one of these per server). Recording honors the
/// same gate as the global tables: a no-op under the `metrics-off`
/// feature or after [`set_metrics_recording`]`(false)`; snapshots stay
/// readable either way.
pub struct LogHistogram {
    inner: Histogram,
}

impl LogHistogram {
    /// A new, empty histogram. Const so it can live in statics.
    pub const fn new() -> Self {
        LogHistogram {
            inner: Histogram::new(),
        }
    }

    /// Records one observation of `value` (no-op while recording is
    /// disabled or compiled out).
    #[inline]
    pub fn record(&self, value: u64) {
        if metrics_recording() {
            self.inner.record(value);
        }
    }

    /// Copies the buckets out and extracts the p50/p95/p99 quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.inner.snapshot()
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        self.inner.reset();
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Per-[`OpKind`] counters and latency histogram.
struct OpTable {
    submitted: ShardedCounter,
    completed: ShardedCounter,
    failed: ShardedCounter,
    latency_ns: Histogram,
}

impl OpTable {
    const fn new() -> Self {
        OpTable {
            submitted: ShardedCounter::new(),
            completed: ShardedCounter::new(),
            failed: ShardedCounter::new(),
            latency_ns: Histogram::new(),
        }
    }
}

/// One slot of the fixed per-model table: a registry generation, its
/// completed-op count, and its learning-op counts. `generation ==
/// EMPTY_SLOT` means unclaimed.
struct ModelSlot {
    generation: AtomicU64,
    ops: AtomicU64,
    train_ops: AtomicU64,
    classify_ops: AtomicU64,
}

/// The process-global metrics tables. Construct-free: everything is
/// const-initialized, so the first record costs the same as the
/// millionth.
struct EngineMetrics {
    ops: [OpTable; OpKind::COUNT],
    batch_sizes: Histogram,
    chunk_sizes: Histogram,
    retrain_epochs: Histogram,
    models: [ModelSlot; MODEL_SLOTS],
    model_overflow: AtomicU64,
}

static GLOBAL: EngineMetrics = EngineMetrics {
    ops: [const { OpTable::new() }; OpKind::COUNT],
    batch_sizes: Histogram::new(),
    chunk_sizes: Histogram::new(),
    retrain_epochs: Histogram::new(),
    models: [const {
        ModelSlot {
            generation: AtomicU64::new(EMPTY_SLOT),
            ops: AtomicU64::new(0),
            train_ops: AtomicU64::new(0),
            classify_ops: AtomicU64::new(0),
        }
    }; MODEL_SLOTS],
    model_overflow: AtomicU64::new(0),
};

/// Reads the clock iff recording is active. Instrumentation sites pair
/// this with [`record_op_nanos`] so a disabled or compiled-out build
/// never calls `Instant::now()`.
#[inline]
pub fn now() -> Option<Instant> {
    if metrics_recording() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Counts `n` ops of `kind` as submitted.
#[inline]
pub fn record_submitted(kind: OpKind, n: u64) {
    if metrics_recording() {
        GLOBAL.ops[kind.index()].submitted.add(n);
    }
}

/// Counts completions and failures for `kind`.
#[inline]
pub fn record_outcomes(kind: OpKind, completed: u64, failed: u64) {
    if !metrics_recording() {
        return;
    }
    let table = &GLOBAL.ops[kind.index()];
    if completed > 0 {
        table.completed.add(completed);
    }
    if failed > 0 {
        table.failed.add(failed);
    }
}

/// Records one op latency observation for `kind`.
#[inline]
pub fn record_op_nanos(kind: OpKind, nanos: u64) {
    if metrics_recording() {
        GLOBAL.ops[kind.index()].latency_ns.record(nanos);
    }
}

/// Attributes a grouped chunk's wall clock to its `n` ops as `n`
/// observations of the per-op share `total_nanos / n`. An
/// approximation — ops inside one grouped scan are not individually
/// timed — and documented as such in docs/OBSERVABILITY.md.
#[inline]
pub fn record_group_nanos(kind: OpKind, n: u64, total_nanos: u64) {
    if n > 0 && metrics_recording() {
        GLOBAL.ops[kind.index()]
            .latency_ns
            .record_n(total_nanos / n, n);
    }
}

/// Records the size of a submitted batch.
#[inline]
pub fn record_batch_size(size: u64) {
    if metrics_recording() {
        GLOBAL.batch_sizes.record(size);
    }
}

/// Records the size of one coalesced chunk the planner fanned out.
#[inline]
pub fn record_chunk_size(size: u64) {
    if metrics_recording() {
        GLOBAL.chunk_sizes.record(size);
    }
}

/// Records the number of epochs one `Retrain` op actually ran (its
/// `epochs_run`, which early-stops below the request on an error-free
/// pass).
#[inline]
pub fn record_retrain_epochs(epochs: u64) {
    if metrics_recording() {
        GLOBAL.retrain_epochs.record(epochs);
    }
}

/// Adds `n` to one counter of `generation`'s slot, claiming a free slot
/// by compare-and-swap when the generation has none yet. When every
/// slot belongs to other generations the count lands in
/// `model_overflow` iff `count_overflow` (only the total-ops counter
/// feeds the overflow cell, so it stays a plain op count).
#[inline]
fn model_slot_add(
    generation: u64,
    n: u64,
    field: fn(&ModelSlot) -> &AtomicU64,
    count_overflow: bool,
) {
    for slot in &GLOBAL.models {
        let claimed = slot.generation.load(Ordering::Relaxed);
        if claimed == generation {
            field(slot).fetch_add(n, Ordering::Relaxed);
            return;
        }
        if claimed == EMPTY_SLOT
            && slot
                .generation
                .compare_exchange(EMPTY_SLOT, generation, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            field(slot).fetch_add(n, Ordering::Relaxed);
            return;
        }
        // Slot belongs to another generation (or a racer claimed it for
        // one); fall through to the next slot.
        if slot.generation.load(Ordering::Relaxed) == generation {
            field(slot).fetch_add(n, Ordering::Relaxed);
            return;
        }
    }
    if count_overflow {
        GLOBAL.model_overflow.fetch_add(n, Ordering::Relaxed);
    }
}

/// Counts `n` completed ops against a model `generation` (a registry
/// stamp, or [`UNREGISTERED_GENERATION`] for plain engines). The table
/// is fixed-size; once all [`MODEL_SLOTS`] are claimed by other
/// generations, counts land in the snapshot's `model_overflow`.
#[inline]
pub fn record_model_ops(generation: u64, n: u64) {
    if n == 0 || !metrics_recording() {
        return;
    }
    model_slot_add(generation, n, |slot| &slot.ops, true);
}

/// Counts `n` Train/Retrain ops against `generation`. Overflow past the
/// slot table is only tallied by [`record_model_ops`] (these ops are
/// already in its `n`), so nothing is double-counted.
#[inline]
pub fn record_model_train_ops(generation: u64, n: u64) {
    if n == 0 || !metrics_recording() {
        return;
    }
    model_slot_add(generation, n, |slot| &slot.train_ops, false);
}

/// Counts `n` Classify ops against `generation`; same overflow rule as
/// [`record_model_train_ops`].
#[inline]
pub fn record_model_classify_ops(generation: u64, n: u64) {
    if n == 0 || !metrics_recording() {
        return;
    }
    model_slot_add(generation, n, |slot| &slot.classify_ops, false);
}

/// A copied-out histogram with pre-extracted quantiles. Quantiles are
/// conservative: each reports the inclusive upper bound of the bucket
/// containing the requested rank, so true values are never understated
/// by more than one power of two.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded observations.
    pub count: u64,
    /// Per-bucket observation counts; bucket `i` covers values of bit
    /// width `i` (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Median (upper bound of the bucket holding rank ⌈0.50·count⌉).
    pub p50: u64,
    /// 95th percentile (same conservative bucket-edge convention).
    pub p95: u64,
    /// 99th percentile (same conservative bucket-edge convention).
    pub p99: u64,
}

impl HistogramSnapshot {
    fn from_buckets(buckets: Vec<u64>) -> Self {
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (index, &bucket_count) in buckets.iter().enumerate() {
                seen += bucket_count;
                if seen >= rank {
                    return bucket_upper_bound(index);
                }
            }
            bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
        };
        let (p50, p95, p99) = (quantile(0.50), quantile(0.95), quantile(0.99));
        HistogramSnapshot {
            count,
            buckets,
            p50,
            p95,
            p99,
        }
    }
}

/// Counters and latency quantiles for one [`OpKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpKindMetrics {
    /// Which op kind this row describes.
    pub kind: OpKind,
    /// Ops submitted (entered an engine entry point).
    pub submitted: u64,
    /// Ops that completed with `Ok`.
    pub completed: u64,
    /// Ops that completed with `Err`.
    pub failed: u64,
    /// Per-op latency histogram, in nanoseconds.
    pub latency_ns: HistogramSnapshot,
}

/// Completed-op count for one registry generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelMetrics {
    /// The registry generation stamp
    /// ([`UNREGISTERED_GENERATION`] = plain engines outside a registry).
    pub generation: u64,
    /// Ops completed against that generation.
    pub ops: u64,
    /// Train/Retrain ops counted against that generation (a subset of
    /// `ops`).
    pub train_ops: u64,
    /// Classify ops counted against that generation (a subset of `ops`).
    pub classify_ops: u64,
}

/// A cheap plain-data copy of every metrics table, taken with relaxed
/// loads (consistent enough for reporting, not a linearizable cut).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Whether the runtime recording switch was on at snapshot time.
    pub recording: bool,
    /// Whether the telemetry layer was compiled out (`metrics-off`).
    pub compiled_out: bool,
    /// Per-op-kind counters and latency, in [`OpKind::ALL`] order.
    pub ops: Vec<OpKindMetrics>,
    /// Histogram of submitted batch sizes.
    pub batch_sizes: HistogramSnapshot,
    /// Histogram of coalesced planner chunk sizes.
    pub chunk_sizes: HistogramSnapshot,
    /// Histogram of epochs actually run per `Retrain` op.
    pub retrain_epochs: HistogramSnapshot,
    /// Exclusive per-stage wall-clock totals, in pipeline order.
    pub stages: Vec<StageTotal>,
    /// Per-model completed-op counts, sorted by ascending generation.
    pub models: Vec<ModelMetrics>,
    /// Ops whose generation found no free slot (see [`MODEL_SLOTS`]).
    pub model_overflow: u64,
}

/// Copies the global tables into a [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let ops = OpKind::ALL
        .iter()
        .map(|&kind| {
            let table = &GLOBAL.ops[kind.index()];
            OpKindMetrics {
                kind,
                submitted: table.submitted.sum(),
                completed: table.completed.sum(),
                failed: table.failed.sum(),
                latency_ns: table.latency_ns.snapshot(),
            }
        })
        .collect();
    let mut models: Vec<ModelMetrics> = GLOBAL
        .models
        .iter()
        .filter_map(|slot| {
            let generation = slot.generation.load(Ordering::Relaxed);
            (generation != EMPTY_SLOT).then(|| ModelMetrics {
                generation,
                ops: slot.ops.load(Ordering::Relaxed),
                train_ops: slot.train_ops.load(Ordering::Relaxed),
                classify_ops: slot.classify_ops.load(Ordering::Relaxed),
            })
        })
        .collect();
    models.sort_by_key(|m| m.generation);
    MetricsSnapshot {
        recording: metrics_recording(),
        compiled_out: metrics_compiled_out(),
        ops,
        batch_sizes: GLOBAL.batch_sizes.snapshot(),
        chunk_sizes: GLOBAL.chunk_sizes.snapshot(),
        retrain_epochs: GLOBAL.retrain_epochs.snapshot(),
        stages: stage_totals().to_vec(),
        models,
        model_overflow: GLOBAL.model_overflow.load(Ordering::Relaxed),
    }
}

/// Resets every metrics table (including the stage totals) to zero.
///
/// Like [`reset_stage_totals`], this is not linearizable against
/// concurrent recording; it is meant for test and benchmark setup.
pub fn reset() {
    for table in &GLOBAL.ops {
        table.submitted.reset();
        table.completed.reset();
        table.failed.reset();
        table.latency_ns.reset();
    }
    GLOBAL.batch_sizes.reset();
    GLOBAL.chunk_sizes.reset();
    GLOBAL.retrain_epochs.reset();
    for slot in &GLOBAL.models {
        slot.generation.store(EMPTY_SLOT, Ordering::Relaxed);
        slot.ops.store(0, Ordering::Relaxed);
        slot.train_ops.store(0, Ordering::Relaxed);
        slot.classify_ops.store(0, Ordering::Relaxed);
    }
    GLOBAL.model_overflow.store(0, Ordering::Relaxed);
    reset_stage_totals();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The metrics tables are process-global; tests that reset or assert
    /// on absolute counts serialize here (cargo runs tests on threads).
    pub(crate) static METRICS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bucket_layout_is_log2_of_bit_width() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_report_conservative_bucket_edges() {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        // 90 observations of ~100ns (bucket 7: 64..=127), 10 of ~1000ns
        // (bucket 10: 512..=1023).
        buckets[bucket_of(100)] = 90;
        buckets[bucket_of(1000)] = 10;
        let snap = HistogramSnapshot::from_buckets(buckets);
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50, 127);
        assert_eq!(snap.p95, 1023);
        assert_eq!(snap.p99, 1023);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = HistogramSnapshot::from_buckets(vec![0u64; HISTOGRAM_BUCKETS]);
        assert_eq!(snap.count, 0);
        assert_eq!((snap.p50, snap.p95, snap.p99), (0, 0, 0));
    }

    #[test]
    fn counters_and_histograms_round_trip_through_snapshot() {
        let _guard = METRICS_LOCK.lock().unwrap();
        if !metrics_recording() {
            return; // metrics-off build: record paths are no-ops
        }
        reset();
        record_submitted(OpKind::Rep2, 5);
        record_outcomes(OpKind::Rep2, 4, 1);
        record_op_nanos(OpKind::Rep2, 900);
        record_group_nanos(OpKind::Rep2, 4, 4000);
        record_batch_size(64);
        record_chunk_size(16);
        let snap = snapshot();
        let rep2 = &snap.ops[OpKind::Rep2.index()];
        assert_eq!(rep2.kind, OpKind::Rep2);
        assert_eq!(rep2.submitted, 5);
        assert_eq!(rep2.completed, 4);
        assert_eq!(rep2.failed, 1);
        assert_eq!(rep2.latency_ns.count, 5);
        assert_eq!(snap.batch_sizes.count, 1);
        assert_eq!(snap.chunk_sizes.count, 1);
        reset();
        assert_eq!(snapshot().ops[OpKind::Rep2.index()].submitted, 0);
    }

    #[test]
    fn model_table_claims_slots_and_overflows_gracefully() {
        let _guard = METRICS_LOCK.lock().unwrap();
        if !metrics_recording() {
            return;
        }
        reset();
        record_model_ops(UNREGISTERED_GENERATION, 3);
        record_model_ops(7, 2);
        record_model_ops(7, 2);
        record_model_train_ops(7, 3);
        record_model_classify_ops(7, 1);
        let snap = snapshot();
        assert_eq!(
            snap.models,
            vec![
                ModelMetrics {
                    generation: UNREGISTERED_GENERATION,
                    ops: 3,
                    train_ops: 0,
                    classify_ops: 0
                },
                ModelMetrics {
                    generation: 7,
                    ops: 4,
                    train_ops: 3,
                    classify_ops: 1
                },
            ]
        );
        // Fill every slot, then overflow.
        reset();
        for generation in 0..MODEL_SLOTS as u64 {
            record_model_ops(generation, 1);
        }
        record_model_ops(999, 5);
        let snap = snapshot();
        assert_eq!(snap.models.len(), MODEL_SLOTS);
        assert_eq!(snap.model_overflow, 5);
        reset();
    }

    #[test]
    fn retrain_epoch_histogram_round_trips() {
        let _guard = METRICS_LOCK.lock().unwrap();
        if !metrics_recording() {
            return;
        }
        reset();
        record_retrain_epochs(3);
        record_retrain_epochs(10);
        let snap = snapshot();
        assert_eq!(snap.retrain_epochs.count, 2);
        assert!(snap.retrain_epochs.p95 >= 10);
        reset();
        assert_eq!(snapshot().retrain_epochs.count, 0);
    }

    #[test]
    fn disabled_recording_skips_every_record_path() {
        let _guard = METRICS_LOCK.lock().unwrap();
        if metrics_compiled_out() {
            return;
        }
        reset();
        set_metrics_recording(false);
        record_submitted(OpKind::Rep1, 1);
        record_outcomes(OpKind::Rep1, 1, 0);
        record_op_nanos(OpKind::Rep1, 100);
        record_batch_size(8);
        record_chunk_size(8);
        record_model_ops(3, 1);
        record_model_train_ops(3, 1);
        record_model_classify_ops(3, 1);
        record_retrain_epochs(4);
        assert!(now().is_none());
        set_metrics_recording(true);
        let snap = snapshot();
        assert_eq!(snap.ops[OpKind::Rep1.index()].submitted, 0);
        assert_eq!(snap.batch_sizes.count, 0);
        assert_eq!(snap.retrain_epochs.count, 0);
        assert!(snap.models.is_empty());
    }
}
