//! The typed operation surface: one request type per query shape, each
//! carrying its own output type.
//!
//! The paper's three representations are distinct query shapes with
//! distinct result types; modeling them as one closed enum forced every
//! caller to pattern-match a `Response` the type system could not tie to
//! the request. An [`Op`] is the request *and* its contract:
//! `engine.run(&FactorizeRep3 { scene })` returns a
//! [`DecodedScene`] — no destructuring, no unreachable arms.
//!
//! | op | paper shape | output |
//! |---|---|---|
//! | [`FactorizeRep1`] | Rep 1: single object, top level only | [`DecodedObject`] |
//! | [`FactorizeRep2`] | Rep 2: single object, full hierarchy | [`DecodedObject`] |
//! | [`FactorizeRep3`] | Rep 3: multi-object scene | [`DecodedScene`] |
//! | [`PartialDecode`] | per-class partial factorization | `Vec<ClassDecode>` |
//! | [`MembershipProbe`] | scene membership query | [`QueryAnswer`] |
//! | [`EncodeScene`] | symbolic → hypervector encoding | [`AccumHv`] |
//! | [`Train`] | online learning: bundle one labelled example | [`TrainAck`] |
//! | [`Retrain`] | misclassification-driven retraining epochs | [`RetrainReport`] |
//! | [`Classify`] | score a query against the class prototypes | [`Classification`] |
//!
//! The learning ops (docs/LEARNING.md) only work on models built with
//! [`crate::ModelState::new_learnable`]; on read-only models they
//! return [`EngineError::NotTrainable`]. `Train`/`Retrain` mutate the
//! model's *staging* prototypes; readers keep classifying against the
//! last published snapshot until the registry publishes a new one.
//!
//! [`AnyOp`] / [`AnyOutput`] are the transport form for *heterogeneous*
//! batches (the planner groups them by [`OpKind`]); homogeneous batches
//! keep full typing through [`crate::FactorEngine::run_batch`].

use crate::{EngineError, ModelState};
use factorhd_core::{
    ClassDecode, DecodedObject, DecodedScene, Encoder, FactorizeConfig, ItemPath, QueryAnswer,
    Scene,
};
use factorhd_learn::{Classification, RetrainReport, TrainAck};
use hdc::AccumHv;

/// A typed engine operation: the request shape and its output type in one
/// trait, so `engine.run(op)` returns exactly what the op produces.
///
/// Ops are pure functions of `(op, model)` — that purity is what lets the
/// batch planner regroup and parallelize them while staying bit-identical
/// to a sequential loop.
pub trait Op {
    /// What this operation produces.
    type Output;

    /// Executes the operation against `model`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Core`] wrapping the underlying validation or
    /// dimension error.
    fn run(&self, model: &ModelState) -> Result<Self::Output, EngineError>;

    /// Executes a batch of same-typed ops, results in input order and
    /// bit-identical to calling [`Op::run`] per op. The default is the
    /// per-op loop; ops with a grouped kernel (the Rep-1/Rep-2 level-1
    /// codebook scans) override it to amortize shard traversal across the
    /// batch.
    fn run_many(model: &ModelState, ops: &[&Self]) -> Vec<Result<Self::Output, EngineError>>
    where
        Self: Sized,
    {
        ops.iter().map(|op| op.run(model)).collect()
    }

    /// Whether [`Op::run_many`] actually amortizes work across the batch
    /// (`true` for the grouped-scan ops). The planner chunks groupable
    /// ops and runs everything else one op per task.
    fn groupable() -> bool
    where
        Self: Sized,
    {
        false
    }

    /// The [`OpKind`] discriminant of this op — the key the metrics layer
    /// accounts counters and latency histograms under.
    fn kind(&self) -> OpKind;
}

/// Rep-1 factorization: recover the single object of a scene vector at
/// the **top level only** (the paper's flat Representation 1), skipping
/// subclass descent entirely. On a flat taxonomy this equals
/// [`FactorizeRep2`]; on a hierarchical one it answers "which top-level
/// item per class" at a fraction of the similarity checks.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorizeRep1 {
    /// The single-object scene hypervector to decode.
    pub scene: AccumHv,
}

/// Rep-2 factorization: recover the single object of a scene vector
/// through the full subclass hierarchy (the paper's Representation 2;
/// also the right op for Rep-1 scenes on flat taxonomies).
#[derive(Debug, Clone, PartialEq)]
pub struct FactorizeRep2 {
    /// The single-object scene hypervector to decode.
    pub scene: AccumHv,
}

/// Rep-3 factorization: recover every object of a multi-object scene
/// vector (count unknown) via threshold selection and the
/// reconstruct-and-exclude loop of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorizeRep3 {
    /// The multi-object scene hypervector to decode.
    pub scene: AccumHv,
}

/// Partial factorization: decode only the listed classes, skipping all
/// similarity work for the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialDecode {
    /// The scene hypervector to decode.
    pub scene: AccumHv,
    /// Class indices to decode (others are skipped entirely).
    pub classes: Vec<usize>,
}

/// Membership probe: "does the scene contain an object with these items
/// (and with these classes absent)?"
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipProbe {
    /// The scene hypervector to probe.
    pub scene: AccumHv,
    /// Required `(class, item path)` constraints.
    pub items: Vec<(usize, ItemPath)>,
    /// Classes required to be absent (NULL) on the queried object.
    pub absent: Vec<usize>,
}

/// Symbolic-to-hypervector encoding of a scene.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeScene {
    /// The symbolic scene to encode.
    pub scene: Scene,
}

/// Online learning: bundle one labelled example into its class's
/// staging prototype.
///
/// The returned [`TrainAck`]'s running totals reflect the moment the
/// example was bundled, which depends on how a parallel batch
/// interleaves; the resulting *prototypes* do not (integer bundling is
/// commutative), so trained models are bit-identical across thread
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Train {
    /// The class label of the example.
    pub class: usize,
    /// Caller-assigned example id, keying the replay buffer (see
    /// [`factorhd_learn::PrototypeModel::observe`]).
    pub sample: u64,
    /// The encoded example.
    pub example: AccumHv,
    /// Whether to retain the example for retraining.
    pub retain: bool,
}

/// Misclassification-driven retraining: up to `epochs` passes over the
/// retained examples, each subtracting misclassified examples from the
/// wrong prototype and adding them to the right one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retrain {
    /// Maximum epochs to run (retraining stops early after an
    /// error-free pass).
    pub epochs: u32,
}

/// Score a query against the model's *published* prototype snapshot.
///
/// Classification never sees staging updates: it reads the snapshot the
/// registry last published, so concurrent `Train`/`Retrain` traffic is
/// invisible until the next publish.
#[derive(Debug, Clone, PartialEq)]
pub struct Classify {
    /// The encoded query.
    pub query: AccumHv,
    /// How many classes to return (clamped to `[1, classes]`).
    pub top_k: usize,
}

/// The Rep-1 depth cap: decode level 1 only, whatever the model's
/// configured depth.
fn rep1_config(model: &ModelState) -> FactorizeConfig {
    FactorizeConfig {
        max_depth: Some(1),
        ..model.config().factorize
    }
}

impl Op for FactorizeRep1 {
    type Output = DecodedObject;

    fn run(&self, model: &ModelState) -> Result<DecodedObject, EngineError> {
        Ok(model
            .factorizer_with(rep1_config(model))
            .factorize_single(&self.scene)?)
    }

    fn run_many(model: &ModelState, ops: &[&Self]) -> Vec<Result<DecodedObject, EngineError>> {
        let scenes: Vec<&AccumHv> = ops.iter().map(|op| &op.scene).collect();
        model
            .factorizer_with(rep1_config(model))
            .factorize_single_many(&scenes)
            .into_iter()
            .map(|r| r.map_err(EngineError::from))
            .collect()
    }

    fn groupable() -> bool {
        true
    }

    fn kind(&self) -> OpKind {
        OpKind::Rep1
    }
}

impl Op for FactorizeRep2 {
    type Output = DecodedObject;

    fn run(&self, model: &ModelState) -> Result<DecodedObject, EngineError> {
        Ok(model.factorizer().factorize_single(&self.scene)?)
    }

    fn run_many(model: &ModelState, ops: &[&Self]) -> Vec<Result<DecodedObject, EngineError>> {
        let scenes: Vec<&AccumHv> = ops.iter().map(|op| &op.scene).collect();
        model
            .factorizer()
            .factorize_single_many(&scenes)
            .into_iter()
            .map(|r| r.map_err(EngineError::from))
            .collect()
    }

    fn groupable() -> bool {
        true
    }

    fn kind(&self) -> OpKind {
        OpKind::Rep2
    }
}

impl Op for FactorizeRep3 {
    type Output = DecodedScene;

    fn run(&self, model: &ModelState) -> Result<DecodedScene, EngineError> {
        Ok(model.factorizer().factorize_multi(&self.scene)?)
    }

    fn kind(&self) -> OpKind {
        OpKind::Rep3
    }
}

impl Op for PartialDecode {
    type Output = Vec<ClassDecode>;

    fn run(&self, model: &ModelState) -> Result<Vec<ClassDecode>, EngineError> {
        Ok(model
            .factorizer()
            .factorize_classes(&self.scene, &self.classes)?)
    }

    fn kind(&self) -> OpKind {
        OpKind::Partial
    }
}

impl Op for MembershipProbe {
    type Output = QueryAnswer;

    fn run(&self, model: &ModelState) -> Result<QueryAnswer, EngineError> {
        Ok(model
            .factorizer()
            .evaluate_membership(&self.scene, &self.items, &self.absent)?)
    }

    fn kind(&self) -> OpKind {
        OpKind::Membership
    }
}

impl Op for EncodeScene {
    type Output = AccumHv;

    fn run(&self, model: &ModelState) -> Result<AccumHv, EngineError> {
        Ok(Encoder::new(model.taxonomy()).encode_scene(&self.scene)?)
    }

    fn kind(&self) -> OpKind {
        OpKind::Encode
    }
}

impl Op for Train {
    type Output = TrainAck;

    fn run(&self, model: &ModelState) -> Result<TrainAck, EngineError> {
        let learner = model.learner().ok_or(EngineError::NotTrainable)?;
        Ok(learner.observe(self.class, self.sample, &self.example, self.retain)?)
    }

    fn run_many(model: &ModelState, ops: &[&Self]) -> Vec<Result<TrainAck, EngineError>> {
        // One lock acquisition for the whole chunk instead of one per
        // example.
        let Some(learner) = model.learner() else {
            return ops.iter().map(|_| Err(EngineError::NotTrainable)).collect();
        };
        learner.with_model(|staged| {
            ops.iter()
                .map(|op| {
                    staged
                        .observe(op.class, op.sample, &op.example, op.retain)
                        .map_err(EngineError::from)
                })
                .collect()
        })
    }

    fn groupable() -> bool {
        true
    }

    fn kind(&self) -> OpKind {
        OpKind::Train
    }
}

impl Op for Retrain {
    type Output = RetrainReport;

    fn run(&self, model: &ModelState) -> Result<RetrainReport, EngineError> {
        let learner = model.learner().ok_or(EngineError::NotTrainable)?;
        let report = learner.retrain(self.epochs);
        crate::metrics::record_retrain_epochs(report.epochs_run as u64);
        Ok(report)
    }

    fn kind(&self) -> OpKind {
        OpKind::Retrain
    }
}

impl Op for Classify {
    type Output = Classification;

    fn run(&self, model: &ModelState) -> Result<Classification, EngineError> {
        let snapshot = model.prototypes().ok_or(EngineError::NotTrainable)?;
        Ok(snapshot.classify(&self.query, self.top_k)?)
    }

    fn kind(&self) -> OpKind {
        OpKind::Classify
    }
}

/// The discriminant of an [`AnyOp`] — the planner's grouping key (ops of
/// one kind against one model scan the same codebooks back to back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// [`FactorizeRep1`]
    Rep1,
    /// [`FactorizeRep2`]
    Rep2,
    /// [`FactorizeRep3`]
    Rep3,
    /// [`PartialDecode`]
    Partial,
    /// [`MembershipProbe`]
    Membership,
    /// [`EncodeScene`]
    Encode,
    /// [`Train`]
    Train,
    /// [`Retrain`]
    Retrain,
    /// [`Classify`]
    Classify,
}

impl OpKind {
    /// Number of op kinds (the width of per-kind metrics tables).
    pub const COUNT: usize = 9;

    /// All op kinds, in [`OpKind::index`] order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Rep1,
        OpKind::Rep2,
        OpKind::Rep3,
        OpKind::Partial,
        OpKind::Membership,
        OpKind::Encode,
        OpKind::Train,
        OpKind::Retrain,
        OpKind::Classify,
    ];

    /// Whether ops of this kind share a grouped kernel (see
    /// [`Op::groupable`]).
    pub fn groupable(self) -> bool {
        matches!(self, OpKind::Rep1 | OpKind::Rep2 | OpKind::Train)
    }

    /// Dense 0-based index of this kind (the metrics table slot).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OpKind::Rep1 => 0,
            OpKind::Rep2 => 1,
            OpKind::Rep3 => 2,
            OpKind::Partial => 3,
            OpKind::Membership => 4,
            OpKind::Encode => 5,
            OpKind::Train => 6,
            OpKind::Retrain => 7,
            OpKind::Classify => 8,
        }
    }

    /// Lower-case stable name used in snapshots and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Rep1 => "rep1",
            OpKind::Rep2 => "rep2",
            OpKind::Rep3 => "rep3",
            OpKind::Partial => "partial",
            OpKind::Membership => "membership",
            OpKind::Encode => "encode",
            OpKind::Train => "train",
            OpKind::Retrain => "retrain",
            OpKind::Classify => "classify",
        }
    }
}

/// A typed op in transport form, for heterogeneous batches. Ops lose
/// their individual output types here — the price of putting different
/// shapes in one `Vec` — and come back as [`AnyOutput`], whose variant
/// the planner guarantees matches the op's [`OpKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnyOp {
    /// A [`FactorizeRep1`] op.
    Rep1(FactorizeRep1),
    /// A [`FactorizeRep2`] op.
    Rep2(FactorizeRep2),
    /// A [`FactorizeRep3`] op.
    Rep3(FactorizeRep3),
    /// A [`PartialDecode`] op.
    Partial(PartialDecode),
    /// A [`MembershipProbe`] op.
    Membership(MembershipProbe),
    /// An [`EncodeScene`] op.
    Encode(EncodeScene),
    /// A [`Train`] op.
    Train(Train),
    /// A [`Retrain`] op.
    Retrain(Retrain),
    /// A [`Classify`] op.
    Classify(Classify),
}

impl AnyOp {
    /// The grouping key of this op.
    pub fn kind(&self) -> OpKind {
        match self {
            AnyOp::Rep1(_) => OpKind::Rep1,
            AnyOp::Rep2(_) => OpKind::Rep2,
            AnyOp::Rep3(_) => OpKind::Rep3,
            AnyOp::Partial(_) => OpKind::Partial,
            AnyOp::Membership(_) => OpKind::Membership,
            AnyOp::Encode(_) => OpKind::Encode,
            AnyOp::Train(_) => OpKind::Train,
            AnyOp::Retrain(_) => OpKind::Retrain,
            AnyOp::Classify(_) => OpKind::Classify,
        }
    }

    /// Whether re-executing this op is observably identical to running
    /// it once. Everything except the training ops is a pure read of the
    /// model, so a client may safely retry it after an ambiguous
    /// transport failure; `Train`/`Retrain` mutate learner state and
    /// must not be retried blindly (docs/ROBUSTNESS.md, "Retry
    /// contract").
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, AnyOp::Train(_) | AnyOp::Retrain(_))
    }

    /// A cheap, deterministic tag for the `engine/op_panic` failpoint
    /// ([`crate::failpoint`]): chaos tests arm `tag:V` to poison exactly
    /// the ops whose tag is `V`, independent of execution order or
    /// thread count. Derived from data the op already carries — distinct
    /// per op for `Train` (the sample id) and `Classify` (`top_k`), a
    /// kind-level constant for the scene ops.
    pub fn chaos_tag(&self) -> u64 {
        match self {
            AnyOp::Rep1(_) => 1,
            AnyOp::Rep2(_) => 2,
            AnyOp::Rep3(_) => 3,
            AnyOp::Partial(op) => 100 + op.classes.len() as u64,
            AnyOp::Membership(op) => 200 + op.items.len() as u64,
            AnyOp::Encode(op) => 300 + op.scene.objects().len() as u64,
            AnyOp::Train(op) => 1_000_000 + op.sample,
            AnyOp::Retrain(op) => 400 + u64::from(op.epochs),
            AnyOp::Classify(op) => 500 + op.top_k as u64,
        }
    }
}

impl From<FactorizeRep1> for AnyOp {
    fn from(op: FactorizeRep1) -> Self {
        AnyOp::Rep1(op)
    }
}

impl From<FactorizeRep2> for AnyOp {
    fn from(op: FactorizeRep2) -> Self {
        AnyOp::Rep2(op)
    }
}

impl From<FactorizeRep3> for AnyOp {
    fn from(op: FactorizeRep3) -> Self {
        AnyOp::Rep3(op)
    }
}

impl From<PartialDecode> for AnyOp {
    fn from(op: PartialDecode) -> Self {
        AnyOp::Partial(op)
    }
}

impl From<MembershipProbe> for AnyOp {
    fn from(op: MembershipProbe) -> Self {
        AnyOp::Membership(op)
    }
}

impl From<EncodeScene> for AnyOp {
    fn from(op: EncodeScene) -> Self {
        AnyOp::Encode(op)
    }
}

impl From<Train> for AnyOp {
    fn from(op: Train) -> Self {
        AnyOp::Train(op)
    }
}

impl From<Retrain> for AnyOp {
    fn from(op: Retrain) -> Self {
        AnyOp::Retrain(op)
    }
}

impl From<Classify> for AnyOp {
    fn from(op: Classify) -> Self {
        AnyOp::Classify(op)
    }
}

/// The output of an [`AnyOp`], variant-matched to the op's [`OpKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnyOutput {
    /// Output of [`AnyOp::Rep1`].
    Rep1(DecodedObject),
    /// Output of [`AnyOp::Rep2`].
    Rep2(DecodedObject),
    /// Output of [`AnyOp::Rep3`].
    Rep3(DecodedScene),
    /// Output of [`AnyOp::Partial`].
    Partial(Vec<ClassDecode>),
    /// Output of [`AnyOp::Membership`].
    Membership(QueryAnswer),
    /// Output of [`AnyOp::Encode`].
    Encoded(AccumHv),
    /// Output of [`AnyOp::Train`].
    Trained(TrainAck),
    /// Output of [`AnyOp::Retrain`].
    Retrained(RetrainReport),
    /// Output of [`AnyOp::Classify`].
    Classified(Classification),
}

impl AnyOutput {
    /// The kind of op that produced this output.
    pub fn kind(&self) -> OpKind {
        match self {
            AnyOutput::Rep1(_) => OpKind::Rep1,
            AnyOutput::Rep2(_) => OpKind::Rep2,
            AnyOutput::Rep3(_) => OpKind::Rep3,
            AnyOutput::Partial(_) => OpKind::Partial,
            AnyOutput::Membership(_) => OpKind::Membership,
            AnyOutput::Encoded(_) => OpKind::Encode,
            AnyOutput::Trained(_) => OpKind::Train,
            AnyOutput::Retrained(_) => OpKind::Retrain,
            AnyOutput::Classified(_) => OpKind::Classify,
        }
    }

    /// The decoded object, when this is a Rep-1 or Rep-2 output.
    pub fn as_object(&self) -> Option<&DecodedObject> {
        match self {
            AnyOutput::Rep1(obj) | AnyOutput::Rep2(obj) => Some(obj),
            _ => None,
        }
    }

    /// The decoded scene, when this is a Rep-3 output.
    pub fn as_scene(&self) -> Option<&DecodedScene> {
        match self {
            AnyOutput::Rep3(scene) => Some(scene),
            _ => None,
        }
    }
}

impl Op for AnyOp {
    type Output = AnyOutput;

    fn run(&self, model: &ModelState) -> Result<AnyOutput, EngineError> {
        match self {
            AnyOp::Rep1(op) => op.run(model).map(AnyOutput::Rep1),
            AnyOp::Rep2(op) => op.run(model).map(AnyOutput::Rep2),
            AnyOp::Rep3(op) => op.run(model).map(AnyOutput::Rep3),
            AnyOp::Partial(op) => op.run(model).map(AnyOutput::Partial),
            AnyOp::Membership(op) => op.run(model).map(AnyOutput::Membership),
            AnyOp::Encode(op) => op.run(model).map(AnyOutput::Encoded),
            AnyOp::Train(op) => op.run(model).map(AnyOutput::Trained),
            AnyOp::Retrain(op) => op.run(model).map(AnyOutput::Retrained),
            AnyOp::Classify(op) => op.run(model).map(AnyOutput::Classified),
        }
    }

    fn kind(&self) -> OpKind {
        AnyOp::kind(self)
    }
}

/// Runs a same-kind slice of [`AnyOp`]s against one model, dispatching
/// groupable kinds to their grouped kernels. Results in input order,
/// bit-identical to per-op [`Op::run`].
///
/// # Panics
///
/// Panics if the ops are not all of `kind` (a planner invariant, not a
/// runtime condition).
pub(crate) fn run_any_group(
    model: &ModelState,
    kind: OpKind,
    ops: &[&AnyOp],
) -> Vec<Result<AnyOutput, EngineError>> {
    match kind {
        OpKind::Rep1 => {
            let typed: Vec<&FactorizeRep1> = ops
                .iter()
                .map(|op| match op {
                    AnyOp::Rep1(inner) => inner,
                    other => panic!("mixed group: expected Rep1, got {:?}", other.kind()),
                })
                .collect();
            FactorizeRep1::run_many(model, &typed)
                .into_iter()
                .map(|r| r.map(AnyOutput::Rep1))
                .collect()
        }
        OpKind::Rep2 => {
            let typed: Vec<&FactorizeRep2> = ops
                .iter()
                .map(|op| match op {
                    AnyOp::Rep2(inner) => inner,
                    other => panic!("mixed group: expected Rep2, got {:?}", other.kind()),
                })
                .collect();
            FactorizeRep2::run_many(model, &typed)
                .into_iter()
                .map(|r| r.map(AnyOutput::Rep2))
                .collect()
        }
        OpKind::Train => {
            let typed: Vec<&Train> = ops
                .iter()
                .map(|op| match op {
                    AnyOp::Train(inner) => inner,
                    other => panic!("mixed group: expected Train, got {:?}", other.kind()),
                })
                .collect();
            Train::run_many(model, &typed)
                .into_iter()
                .map(|r| r.map(AnyOutput::Trained))
                .collect()
        }
        _ => ops.iter().map(|op| op.run(model)).collect(),
    }
}
