//! Zero-allocation guarantee for the telemetry record path: every
//! `factorhd_engine::metrics` record primitive — counters, histograms,
//! the per-model table, and the stage timers — must not touch the heap
//! once the process is warm. The tables are statically allocated
//! atomics, so a record is one or two relaxed adds; this test proves it
//! with a counting global allocator, the same technique as the hdc scan
//! steady-state test.
//!
//! This file holds exactly one test so no sibling test thread can
//! allocate concurrently and blur the measurement.

use factorhd_engine::metrics::{self, Stage, StageTimer};
use factorhd_engine::OpKind;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Delegates to the system allocator, counting every allocation and
/// reallocation (deallocations are free to happen — the invariant under
/// test is "no new memory", not "no memory").
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure delegation to `System`, which upholds the `GlobalAlloc`
// contract; the counter is a side effect invisible to allocation
// semantics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One round of every record primitive the engine's hot paths call.
fn record_round(round: u64) {
    for kind in OpKind::ALL {
        metrics::record_submitted(kind, 3);
        metrics::record_outcomes(kind, 2, 1);
        metrics::record_op_nanos(kind, 1_500 + round);
        metrics::record_group_nanos(kind, 4, 80_000 + round);
    }
    metrics::record_batch_size(64);
    metrics::record_chunk_size(16);
    // Both generations were claimed during warm-up, so these are pure
    // linear-scan + relaxed-add hits.
    metrics::record_model_ops(metrics::UNREGISTERED_GENERATION, 8);
    metrics::record_model_ops(7, 8);
    // Nested spans: Plan wrapping Scan, the deepest shape the engine's
    // instrumentation produces, exercising the exclusive-time flush.
    let plan = StageTimer::enter(Stage::Plan);
    {
        let _scan = StageTimer::enter(Stage::Scan);
        std::hint::black_box(round);
    }
    drop(plan);
    if let Some(started) = metrics::now() {
        metrics::record_op_nanos(OpKind::Rep2, started.elapsed().as_nanos() as u64);
    }
}

#[test]
fn steady_state_metric_recording_performs_zero_heap_allocations() {
    metrics::set_metrics_recording(true);
    metrics::reset();

    // Warm-up: claim this thread's counter shard, the two model-table
    // slots, and pay any one-time clock setup.
    for round in 0..2 {
        record_round(round);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..25 {
        record_round(round);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state metric recording must not allocate (saw {} allocations over 25 rounds)",
        after - before
    );

    // The allocation-free rounds really recorded (27 rounds total since
    // reset) — unless the layer is compiled out, in which case every
    // record path must have stayed a no-op.
    let snapshot = metrics::snapshot();
    if metrics::metrics_compiled_out() {
        assert_eq!(snapshot.batch_sizes.count, 0);
        return;
    }
    let rep2 = &snapshot.ops[OpKind::Rep2.index()];
    assert_eq!(rep2.submitted, 27 * 3);
    assert_eq!(rep2.completed, 27 * 2);
    assert_eq!(rep2.failed, 27);
    // 1 op + 4 group shares + 1 timed observation per round.
    assert_eq!(rep2.latency_ns.count, 27 * 6);
    assert_eq!(snapshot.batch_sizes.count, 27);
    assert_eq!(snapshot.chunk_sizes.count, 27);
    assert_eq!(snapshot.models.len(), 2);
    assert!(snapshot.models.iter().all(|m| m.ops == 27 * 8));
    let spans: u64 = snapshot
        .stages
        .iter()
        .filter(|s| matches!(s.stage, Stage::Plan | Stage::Scan))
        .map(|s| s.count)
        .sum();
    assert_eq!(spans, 27 * 2, "both nested spans must count every round");
}
