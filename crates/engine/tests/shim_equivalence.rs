//! The deprecated enum shim must be a *thin* shim: every legacy
//! [`Request`] routed through `execute` / `execute_batch` returns results
//! byte-identical to the typed op it maps onto, for random models and
//! random request streams.

#![allow(deprecated)]

use factorhd_core::{Encoder, Scene, Taxonomy, TaxonomyBuilder};
use factorhd_engine::{AnyOp, AnyOutput, EngineConfig, FactorEngine, Op, Request, Response};
use proptest::prelude::*;

/// A generated model: dimension, seed, and per-class level sizes.
type ModelSpec = (usize, u64, Vec<Vec<usize>>);

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    (
        256usize..1024,
        any::<u64>(),
        proptest::collection::vec(proptest::collection::vec(2usize..7, 1..3), 2..4),
    )
}

fn build_model(spec: &ModelSpec) -> Taxonomy {
    let (dim, seed, classes) = spec;
    let mut builder = TaxonomyBuilder::new(*dim).seed(*seed);
    for (i, levels) in classes.iter().enumerate() {
        builder = builder.class(&format!("class-{i}"), levels);
    }
    builder.build().expect("generated spec is valid")
}

/// One legacy request of each shape, drawn deterministically from the
/// model and a stream seed.
fn request_stream(taxonomy: &Taxonomy, n: usize, seed: u64) -> Vec<Request> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(seed);
    (0..n)
        .map(|i| {
            let object = taxonomy.sample_object(&mut rng);
            match i % 5 {
                0 => {
                    let scene = taxonomy.sample_scene(2, true, &mut rng);
                    Request::FactorizeMulti(encoder.encode_scene(&scene).expect("encodable"))
                }
                1 => Request::FactorizeClasses {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                    classes: vec![i % taxonomy.num_classes()],
                },
                2 => Request::Membership {
                    scene: encoder
                        .encode_scene(&Scene::single(object.clone()))
                        .expect("encodable"),
                    items: vec![(0, object.assignment(0).expect("present").clone())],
                    absent: vec![],
                },
                3 => Request::EncodeScene(Scene::single(object)),
                _ => Request::FactorizeSingle(
                    encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                ),
            }
        })
        .collect()
}

/// The typed result a legacy request must reproduce, computed through
/// `Op::run` directly (no planner, no shim).
fn typed_reference(
    engine: &FactorEngine,
    request: &Request,
) -> Result<AnyOutput, factorhd_engine::EngineError> {
    AnyOp::from(request.clone()).run(engine.model())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shim_execute_equals_typed_op(spec in model_strategy(), stream_seed in any::<u64>()) {
        let engine = FactorEngine::new(build_model(&spec), EngineConfig::default())
            .expect("default config is valid");
        for request in request_stream(engine.taxonomy(), 10, stream_seed) {
            let via_shim = engine.execute(&request).expect("request succeeds");
            let typed = typed_reference(&engine, &request).expect("op succeeds");
            prop_assert_eq!(via_shim, Response::from(typed));
        }
    }

    #[test]
    fn shim_batches_equal_typed_planner(spec in model_strategy(), stream_seed in any::<u64>()) {
        let engine = FactorEngine::new(build_model(&spec), EngineConfig::default())
            .expect("default config is valid");
        let requests = request_stream(engine.taxonomy(), 15, stream_seed);
        let ops: Vec<AnyOp> = requests.iter().cloned().map(AnyOp::from).collect();

        let shim_batch: Vec<Response> = engine
            .execute_batch(&requests)
            .into_iter()
            .map(|r| r.expect("request succeeds"))
            .collect();
        let shim_sequential: Vec<Response> = engine
            .execute_sequential(&requests)
            .into_iter()
            .map(|r| r.expect("request succeeds"))
            .collect();
        let typed: Vec<Response> = engine
            .run_mixed(&ops)
            .into_iter()
            .map(|r| Response::from(r.expect("op succeeds")))
            .collect();

        prop_assert_eq!(&shim_batch, &typed);
        prop_assert_eq!(&shim_batch, &shim_sequential);
    }
}

#[test]
fn shim_error_paths_match_typed() {
    let engine = FactorEngine::new(
        TaxonomyBuilder::new(256)
            .class("a", &[4])
            .class("b", &[4])
            .build()
            .expect("valid"),
        EngineConfig::default(),
    )
    .expect("valid config");
    // A wrong-dimension request fails identically through both surfaces.
    let bad = Request::FactorizeSingle(hdc::AccumHv::zeros(32));
    let via_shim = engine.execute(&bad).expect_err("must fail");
    let typed = typed_reference(&engine, &bad).expect_err("must fail");
    assert_eq!(via_shim.to_string(), typed.to_string());
}
