//! Property coverage for the `.fhd` artifact codec: encode → decode is
//! identity for random taxonomies and dimensions (with and without a
//! trained-prototype section), corrupted bytes (truncation, bad magic,
//! flipped checksum/payload bits) fail with a typed [`EngineError`]
//! instead of a panic, and version skew behaves as documented — older
//! versions still load, unknown versions are rejected.

use factorhd_core::{Encoder, FactorizeConfig, Factorizer, Scene, Taxonomy, TaxonomyBuilder};
use factorhd_engine::{artifact, EngineError, LearnConfig, PrototypeModel};
use hdc::{AccumHv, BipolarHv, Codebook};
use proptest::prelude::*;

/// The generated model description: dimension, seed, per-class level
/// sizes, and which class (if any) gets an override codebook.
type ModelSpec = (usize, u64, Vec<Vec<usize>>, Option<(usize, u64)>);

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    (
        50usize..400,
        any::<u64>(),
        proptest::collection::vec(proptest::collection::vec(1usize..9, 1..3), 1..4),
        prop_oneof![Just(None), (0usize..4, any::<u64>()).prop_map(Some),],
    )
}

fn build_model(spec: &ModelSpec) -> Taxonomy {
    let (dim, seed, classes, override_spec) = spec;
    let mut builder = TaxonomyBuilder::new(*dim).seed(*seed);
    for (i, levels) in classes.iter().enumerate() {
        builder = builder.class(&format!("class-{i}"), levels);
    }
    let taxonomy = builder.build().expect("generated spec is valid");
    if let Some((class_pick, cb_seed)) = override_spec {
        let class = class_pick % classes.len();
        let m = classes[class][0];
        taxonomy
            .set_codebook(class, &[], Codebook::derive(*cb_seed, m, *dim))
            .expect("override matches declared level");
    }
    taxonomy
}

fn to_bytes(taxonomy: &Taxonomy) -> Vec<u8> {
    let mut buf = Vec::new();
    artifact::write_taxonomy(&mut buf, taxonomy).expect("writing to a Vec cannot fail");
    buf
}

/// The generated prototype section: per-class `(count, bundle weight,
/// noise seed)`, the hypervector dimension, the epoch counter, and the
/// replay-buffer bound.
type ProtoSpec = (Vec<(u64, i32, u64)>, usize, u64, usize);

fn proto_strategy() -> impl Strategy<Value = ProtoSpec> {
    (
        proptest::collection::vec((0u64..1000, -8i32..9, any::<u64>()), 1..5),
        8usize..100,
        0u64..10_000,
        0usize..(1 << 20),
    )
}

fn build_prototypes(spec: &ProtoSpec) -> PrototypeModel {
    let (classes, dim, epoch, max_retained) = spec;
    let config = LearnConfig {
        classes: classes.len(),
        dim: *dim,
        max_retained: *max_retained,
    };
    let mut accums = Vec::with_capacity(classes.len());
    let mut counts = Vec::with_capacity(classes.len());
    for (count, weight, seed) in classes {
        let mut acc = AccumHv::zeros(*dim);
        let mut rng = hdc::rng_from_seed(*seed);
        acc.add_bipolar(&BipolarHv::random(*dim, &mut rng), *weight);
        accums.push(acc);
        counts.push(*count);
    }
    PrototypeModel::from_parts(config, accums, counts, *epoch).expect("generated spec is valid")
}

fn model_to_bytes(taxonomy: &Taxonomy, prototypes: &PrototypeModel) -> Vec<u8> {
    let mut buf = Vec::new();
    artifact::write_model(&mut buf, taxonomy, Some(prototypes))
        .expect("writing to a Vec cannot fail");
    buf
}

/// FNV-1a 64-bit — the codec's checksum, reimplemented here so tests
/// can forge artifacts with a rewritten version field.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Rewrites an artifact's version field (and optionally drops the v3
/// prototype-presence byte, turning a prototype-free v3 body into a
/// valid v1/v2 body), restamping the checksum so only the version skew
/// itself is under test.
fn rewrite_version(bytes: &[u8], version: u16, drop_presence_byte: bool) -> Vec<u8> {
    let mut body = bytes[..bytes.len() - 8].to_vec();
    body[8..10].copy_from_slice(&version.to_le_bytes());
    if drop_presence_byte {
        let presence = body.pop().expect("body is non-empty");
        assert_eq!(
            presence, 0,
            "only prototype-free artifacts can drop the flag"
        );
    }
    let checksum = fnv1a(&body);
    body.extend_from_slice(&checksum.to_le_bytes());
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encode_decode_is_identity(spec in model_strategy()) {
        let original = build_model(&spec);
        let bytes = to_bytes(&original);
        let loaded = artifact::parse_taxonomy(&bytes).expect("valid artifact parses");

        prop_assert_eq!(loaded.dim(), original.dim());
        prop_assert_eq!(loaded.seed(), original.seed());
        prop_assert_eq!(loaded.num_classes(), original.num_classes());
        for class in 0..original.num_classes() {
            prop_assert_eq!(loaded.class_name(class), original.class_name(class));
            prop_assert_eq!(loaded.levels(class), original.levels(class));
            for level in 0..original.levels(class) {
                prop_assert_eq!(
                    loaded.level_size(class, level),
                    original.level_size(class, level)
                );
            }
            prop_assert_eq!(loaded.label(class), original.label(class));
            prop_assert_eq!(
                loaded.codebook(class, &[]).expect("valid").as_ref(),
                original.codebook(class, &[]).expect("valid").as_ref()
            );
        }
        prop_assert_eq!(loaded.null_hv(), original.null_hv());
        // Re-serializing reproduces the artifact byte-for-byte.
        prop_assert_eq!(to_bytes(&loaded), bytes);
    }

    #[test]
    fn loaded_model_factorizes_identically(spec in model_strategy(), scene_seed in any::<u64>()) {
        let original = build_model(&spec);
        let bytes = to_bytes(&original);
        let loaded = artifact::parse_taxonomy(&bytes).expect("valid artifact parses");

        let mut rng = hdc::rng_from_seed(scene_seed);
        let object = original.sample_object(&mut rng);
        let hv = Encoder::new(&original)
            .encode_scene(&Scene::single(object))
            .expect("encodable");
        let a = Factorizer::new(&original, FactorizeConfig::default())
            .factorize_single(&hv)
            .expect("decodes");
        let b = Factorizer::new(&loaded, FactorizeConfig::default())
            .factorize_single(&hv)
            .expect("decodes");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn truncation_never_panics(spec in model_strategy(), cut_fraction in 0.0f64..1.0) {
        let bytes = to_bytes(&build_model(&spec));
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let err = artifact::parse_taxonomy(&bytes[..cut])
            .expect_err("truncated artifact must fail");
        prop_assert!(matches!(
            err,
            EngineError::Truncated { .. } | EngineError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn flipped_bit_never_panics(spec in model_strategy(), pos_pick in any::<u64>(), bit in 0u8..8) {
        let mut bytes = to_bytes(&build_model(&spec));
        let pos = (pos_pick as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Any single-bit flip must surface as a typed error, never a
        // panic or a silently different model.
        match artifact::parse_taxonomy(&bytes) {
            Err(
                EngineError::BadMagic { .. }
                | EngineError::UnsupportedVersion(_)
                | EngineError::ChecksumMismatch { .. }
                | EngineError::Truncated { .. }
                | EngineError::Corrupt(_)
                | EngineError::Core(_),
            ) => {}
            Err(other) => prop_assert!(false, "untyped error: {other:?}"),
            Ok(_) => prop_assert!(false, "corrupted artifact parsed successfully"),
        }
    }

    #[test]
    fn bad_magic_rejected(spec in model_strategy(), junk in any::<u8>()) {
        let mut bytes = to_bytes(&build_model(&spec));
        if bytes[0] == junk {
            bytes[0] = junk.wrapping_add(1);
        } else {
            bytes[0] = junk;
        }
        prop_assert!(matches!(
            artifact::parse_taxonomy(&bytes),
            Err(EngineError::BadMagic { .. })
        ));
    }

    #[test]
    fn prototype_encode_decode_is_identity(spec in model_strategy(), proto in proto_strategy()) {
        let taxonomy = build_model(&spec);
        let prototypes = build_prototypes(&proto);
        let bytes = model_to_bytes(&taxonomy, &prototypes);

        let (loaded_taxonomy, loaded_prototypes) =
            artifact::parse_model(&bytes).expect("valid artifact parses");
        prop_assert_eq!(loaded_taxonomy.dim(), taxonomy.dim());
        prop_assert_eq!(loaded_taxonomy.seed(), taxonomy.seed());
        // `from_parts` starts with an empty replay buffer, exactly like a
        // load (the buffer is deliberately not persisted), so the loaded
        // model must be *equal* — accumulators, counts, epoch, config.
        let loaded_prototypes = loaded_prototypes.expect("prototype section present");
        prop_assert_eq!(&loaded_prototypes, &prototypes);
        // Re-serializing reproduces the artifact byte-for-byte.
        prop_assert_eq!(model_to_bytes(&loaded_taxonomy, &loaded_prototypes), bytes);
    }

    #[test]
    fn prototype_truncation_never_panics(
        spec in model_strategy(),
        proto in proto_strategy(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = model_to_bytes(&build_model(&spec), &build_prototypes(&proto));
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let err = artifact::parse_model(&bytes[..cut])
            .expect_err("truncated artifact must fail");
        prop_assert!(matches!(
            err,
            EngineError::Truncated { .. } | EngineError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn prototype_flipped_bit_never_panics(
        spec in model_strategy(),
        proto in proto_strategy(),
        pos_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = model_to_bytes(&build_model(&spec), &build_prototypes(&proto));
        let pos = (pos_pick as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        match artifact::parse_model(&bytes) {
            Err(
                EngineError::BadMagic { .. }
                | EngineError::UnsupportedVersion(_)
                | EngineError::ChecksumMismatch { .. }
                | EngineError::Truncated { .. }
                | EngineError::Corrupt(_)
                | EngineError::Core(_),
            ) => {}
            Err(other) => prop_assert!(false, "untyped error: {other:?}"),
            Ok(_) => prop_assert!(false, "corrupted artifact parsed successfully"),
        }
    }

    #[test]
    fn version_skew_old_versions_still_load(
        (dim, seed, classes, _) in model_strategy(),
        old_version in 1u16..=2,
    ) {
        // Codebook overrides are excluded: version 1 has no per-override
        // shard-geometry field, so only override-free bodies are valid
        // under every old version.
        let taxonomy = build_model(&(dim, seed, classes, None));
        let bytes = to_bytes(&taxonomy);
        // v1 bodies additionally lack the v3 prototype-presence byte.
        let old = rewrite_version(&bytes, old_version, true);

        let (loaded, prototypes) = artifact::parse_model(&old)
            .expect("older supported versions must keep loading");
        prop_assert!(prototypes.is_none(), "old versions cannot carry prototypes");
        prop_assert_eq!(loaded.dim(), taxonomy.dim());
        prop_assert_eq!(loaded.seed(), taxonomy.seed());
        prop_assert_eq!(loaded.num_classes(), taxonomy.num_classes());
    }

    #[test]
    fn version_skew_unknown_versions_rejected(
        spec in model_strategy(),
        proto in proto_strategy(),
        future_version in 4u16..u16::MAX,
    ) {
        let bytes = model_to_bytes(&build_model(&spec), &build_prototypes(&proto));
        let skewed = rewrite_version(&bytes, future_version, false);
        prop_assert!(matches!(
            artifact::parse_model(&skewed),
            Err(EngineError::UnsupportedVersion(v)) if v == future_version
        ));
    }
}
