//! Property coverage for the `.fhd` artifact codec: encode → decode is
//! identity for random taxonomies and dimensions, and corrupted bytes
//! (truncation, bad magic, flipped checksum/payload bits) fail with a
//! typed [`EngineError`] instead of a panic.

use factorhd_core::{Encoder, FactorizeConfig, Factorizer, Scene, Taxonomy, TaxonomyBuilder};
use factorhd_engine::{artifact, EngineError};
use hdc::Codebook;
use proptest::prelude::*;

/// The generated model description: dimension, seed, per-class level
/// sizes, and which class (if any) gets an override codebook.
type ModelSpec = (usize, u64, Vec<Vec<usize>>, Option<(usize, u64)>);

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    (
        50usize..400,
        any::<u64>(),
        proptest::collection::vec(proptest::collection::vec(1usize..9, 1..3), 1..4),
        prop_oneof![Just(None), (0usize..4, any::<u64>()).prop_map(Some),],
    )
}

fn build_model(spec: &ModelSpec) -> Taxonomy {
    let (dim, seed, classes, override_spec) = spec;
    let mut builder = TaxonomyBuilder::new(*dim).seed(*seed);
    for (i, levels) in classes.iter().enumerate() {
        builder = builder.class(&format!("class-{i}"), levels);
    }
    let taxonomy = builder.build().expect("generated spec is valid");
    if let Some((class_pick, cb_seed)) = override_spec {
        let class = class_pick % classes.len();
        let m = classes[class][0];
        taxonomy
            .set_codebook(class, &[], Codebook::derive(*cb_seed, m, *dim))
            .expect("override matches declared level");
    }
    taxonomy
}

fn to_bytes(taxonomy: &Taxonomy) -> Vec<u8> {
    let mut buf = Vec::new();
    artifact::write_taxonomy(&mut buf, taxonomy).expect("writing to a Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encode_decode_is_identity(spec in model_strategy()) {
        let original = build_model(&spec);
        let bytes = to_bytes(&original);
        let loaded = artifact::parse_taxonomy(&bytes).expect("valid artifact parses");

        prop_assert_eq!(loaded.dim(), original.dim());
        prop_assert_eq!(loaded.seed(), original.seed());
        prop_assert_eq!(loaded.num_classes(), original.num_classes());
        for class in 0..original.num_classes() {
            prop_assert_eq!(loaded.class_name(class), original.class_name(class));
            prop_assert_eq!(loaded.levels(class), original.levels(class));
            for level in 0..original.levels(class) {
                prop_assert_eq!(
                    loaded.level_size(class, level),
                    original.level_size(class, level)
                );
            }
            prop_assert_eq!(loaded.label(class), original.label(class));
            prop_assert_eq!(
                loaded.codebook(class, &[]).expect("valid").as_ref(),
                original.codebook(class, &[]).expect("valid").as_ref()
            );
        }
        prop_assert_eq!(loaded.null_hv(), original.null_hv());
        // Re-serializing reproduces the artifact byte-for-byte.
        prop_assert_eq!(to_bytes(&loaded), bytes);
    }

    #[test]
    fn loaded_model_factorizes_identically(spec in model_strategy(), scene_seed in any::<u64>()) {
        let original = build_model(&spec);
        let bytes = to_bytes(&original);
        let loaded = artifact::parse_taxonomy(&bytes).expect("valid artifact parses");

        let mut rng = hdc::rng_from_seed(scene_seed);
        let object = original.sample_object(&mut rng);
        let hv = Encoder::new(&original)
            .encode_scene(&Scene::single(object))
            .expect("encodable");
        let a = Factorizer::new(&original, FactorizeConfig::default())
            .factorize_single(&hv)
            .expect("decodes");
        let b = Factorizer::new(&loaded, FactorizeConfig::default())
            .factorize_single(&hv)
            .expect("decodes");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn truncation_never_panics(spec in model_strategy(), cut_fraction in 0.0f64..1.0) {
        let bytes = to_bytes(&build_model(&spec));
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let err = artifact::parse_taxonomy(&bytes[..cut])
            .expect_err("truncated artifact must fail");
        prop_assert!(matches!(
            err,
            EngineError::Truncated { .. } | EngineError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn flipped_bit_never_panics(spec in model_strategy(), pos_pick in any::<u64>(), bit in 0u8..8) {
        let mut bytes = to_bytes(&build_model(&spec));
        let pos = (pos_pick as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Any single-bit flip must surface as a typed error, never a
        // panic or a silently different model.
        match artifact::parse_taxonomy(&bytes) {
            Err(
                EngineError::BadMagic { .. }
                | EngineError::UnsupportedVersion(_)
                | EngineError::ChecksumMismatch { .. }
                | EngineError::Truncated { .. }
                | EngineError::Corrupt(_)
                | EngineError::Core(_),
            ) => {}
            Err(other) => prop_assert!(false, "untyped error: {other:?}"),
            Ok(_) => prop_assert!(false, "corrupted artifact parsed successfully"),
        }
    }

    #[test]
    fn bad_magic_rejected(spec in model_strategy(), junk in any::<u8>()) {
        let mut bytes = to_bytes(&build_model(&spec));
        if bytes[0] == junk {
            bytes[0] = junk.wrapping_add(1);
        } else {
            bytes[0] = junk;
        }
        prop_assert!(matches!(
            artifact::parse_taxonomy(&bytes),
            Err(EngineError::BadMagic { .. })
        ));
    }
}
