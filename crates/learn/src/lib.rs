//! # factorhd-learn — online class-prototype learning
//!
//! The training side of the FactorHD serving stack: per-class
//! hypervector prototypes accumulated online from labelled examples,
//! with a misclassification-driven retraining loop (chopin2-style
//! epochs) and immutable classification snapshots for lock-free
//! readers.
//!
//! * [`PrototypeModel`] — the mutable staging model: one [`AccumHv`]
//!   accumulator per class, bundled from examples by exact integer
//!   addition, plus a bounded replay buffer of retained examples that
//!   the retraining loop iterates over.
//! * [`PrototypeSnapshot`] — an immutable, sign-binarized view of the
//!   prototypes packed into a [`Codebook`], so classification takes the
//!   same word-level scan path as factorization. Snapshots are what
//!   readers classify against; publishing a new snapshot never blocks
//!   them.
//! * [`Learner`] — the thread-safe wrapper the serving engine stores:
//!   writers lock the staging [`PrototypeModel`], readers only ever see
//!   published snapshots.
//!
//! # Determinism
//!
//! Training is bit-deterministic by construction, independent of thread
//! count and arrival interleaving:
//!
//! * bundling is exact integer addition, which is commutative and
//!   associative — any order of `observe` calls yields the same
//!   accumulators;
//! * the replay buffer is keyed by the caller-assigned sample id in a
//!   `BTreeMap`, so its iteration order (and capacity eviction) depends
//!   only on the id set, not on arrival order;
//! * retraining walks the replay buffer sequentially in id order with
//!   exact integer dot products; similarity ties resolve to the lowest
//!   class index.
//!
//! # Quickstart
//!
//! ```
//! use factorhd_learn::{LearnConfig, PrototypeModel};
//! use hdc::AccumHv;
//!
//! # fn main() -> Result<(), factorhd_learn::LearnError> {
//! let mut model = PrototypeModel::new(LearnConfig::new(2, 8))?;
//! let up = AccumHv::from_components(vec![1, 1, 1, 1, -1, -1, 1, 1]);
//! let down = AccumHv::from_components(vec![-1, -1, -1, 1, 1, 1, -1, -1]);
//! model.observe(0, 0, &up, true)?;
//! model.observe(1, 1, &down, true)?;
//!
//! let report = model.retrain(3);
//! assert!(report.epochs_run <= 3);
//!
//! let snapshot = model.snapshot()?;
//! assert_eq!(snapshot.predict(&up)?.class, 0);
//! assert_eq!(snapshot.predict(&down)?.class, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use hdc::{AccumHv, Codebook};
use parking_lot::Mutex;

/// Default bound on the number of retained examples per model
/// ([`LearnConfig::max_retained`]).
pub const DEFAULT_MAX_RETAINED: usize = 1 << 16;

/// Errors from the learning subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LearnError {
    /// The model configuration is structurally invalid.
    InvalidConfig(String),
    /// A class label was out of range for the model.
    UnknownClass {
        /// The offending class label.
        class: usize,
        /// The number of classes the model was configured with.
        classes: usize,
    },
    /// An example or query had the wrong dimensionality.
    DimMismatch {
        /// The model's dimension.
        expected: usize,
        /// The dimension of the offending vector.
        found: usize,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::InvalidConfig(msg) => write!(f, "invalid learn config: {msg}"),
            LearnError::UnknownClass { class, classes } => {
                write!(f, "unknown class {class} (model has {classes} classes)")
            }
            LearnError::DimMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: model dim {expected}, vector dim {found}"
                )
            }
        }
    }
}

impl Error for LearnError {}

/// Structural configuration of a prototype model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnConfig {
    /// Number of classes (one prototype accumulator each).
    pub classes: usize,
    /// Hypervector dimensionality of examples and prototypes.
    pub dim: usize,
    /// Upper bound on retained examples across all classes. When the
    /// replay buffer is full, the examples with the largest sample ids
    /// are evicted first, so the retained set is always the
    /// `max_retained` *smallest* ids seen — a function of the id set
    /// alone, independent of arrival order.
    pub max_retained: usize,
}

impl LearnConfig {
    /// A config with the default replay-buffer bound
    /// ([`DEFAULT_MAX_RETAINED`]).
    pub fn new(classes: usize, dim: usize) -> Self {
        Self {
            classes,
            dim,
            max_retained: DEFAULT_MAX_RETAINED,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), LearnError> {
        if self.classes == 0 {
            return Err(LearnError::InvalidConfig("zero classes".into()));
        }
        if self.dim == 0 {
            return Err(LearnError::InvalidConfig("zero dimension".into()));
        }
        Ok(())
    }
}

/// Acknowledgement of one training observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainAck {
    /// The class the example was bundled into.
    pub class: usize,
    /// Total examples observed by the model so far (all classes).
    pub examples: u64,
    /// Examples currently held in the replay buffer.
    pub retained: u64,
    /// The model's retraining epoch counter at observation time.
    pub epoch: u64,
}

/// Outcome of a retraining run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrainReport {
    /// Epochs the caller asked for.
    pub epochs_requested: u32,
    /// Epochs actually run (retraining stops early once an epoch makes
    /// no classification errors over the replay buffer).
    pub epochs_run: u32,
    /// Misclassified examples per epoch run, in order.
    pub errors_per_epoch: Vec<u64>,
    /// Examples in the replay buffer the epochs iterated over.
    pub retained: u64,
    /// The model's epoch counter after the run.
    pub epoch: u64,
}

/// One scored class from a classification query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassHit {
    /// Class index.
    pub class: usize,
    /// Normalized dot similarity (`dot / dim`) against the class
    /// prototype.
    pub sim: f64,
}

/// Result of classifying one query against a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The `top_k` best classes, sorted by descending similarity; ties
    /// resolve to the lowest class index.
    pub hits: Vec<ClassHit>,
    /// The epoch counter of the snapshot that served the query.
    pub epoch: u64,
}

/// The mutable staging model: per-class accumulators plus the replay
/// buffer retraining iterates over.
///
/// `PrototypeModel` is single-threaded by itself; the serving stack
/// wraps it in a [`Learner`] and readers classify against immutable
/// [`PrototypeSnapshot`]s instead.
#[derive(Debug, Clone, PartialEq)]
pub struct PrototypeModel {
    config: LearnConfig,
    accums: Vec<AccumHv>,
    counts: Vec<u64>,
    epoch: u64,
    /// sample id → (class label, example). Not persisted in artifacts.
    replay: BTreeMap<u64, (u32, AccumHv)>,
}

impl PrototypeModel {
    /// An empty model (all-zero accumulators).
    pub fn new(config: LearnConfig) -> Result<Self, LearnError> {
        config.validate()?;
        Ok(Self {
            accums: (0..config.classes)
                .map(|_| AccumHv::zeros(config.dim))
                .collect(),
            counts: vec![0; config.classes],
            epoch: 0,
            replay: BTreeMap::new(),
            config,
        })
    }

    /// Rebuilds a model from persisted parts (artifact loading). The
    /// replay buffer is not persisted, so a reloaded model classifies
    /// identically but retrains from an empty retained set.
    pub fn from_parts(
        config: LearnConfig,
        accums: Vec<AccumHv>,
        counts: Vec<u64>,
        epoch: u64,
    ) -> Result<Self, LearnError> {
        config.validate()?;
        if accums.len() != config.classes || counts.len() != config.classes {
            return Err(LearnError::InvalidConfig(format!(
                "expected {} classes, got {} accumulators / {} counts",
                config.classes,
                accums.len(),
                counts.len()
            )));
        }
        for accum in &accums {
            if accum.dim() != config.dim {
                return Err(LearnError::DimMismatch {
                    expected: config.dim,
                    found: accum.dim(),
                });
            }
        }
        Ok(Self {
            config,
            accums,
            counts,
            epoch,
            replay: BTreeMap::new(),
        })
    }

    /// Bundles one labelled example into its class prototype.
    ///
    /// `sample` is the caller-assigned id of the example; when `retain`
    /// is set the example joins the replay buffer under that id
    /// (overwriting any previous example with the same id), subject to
    /// the [`LearnConfig::max_retained`] bound.
    pub fn observe(
        &mut self,
        class: usize,
        sample: u64,
        example: &AccumHv,
        retain: bool,
    ) -> Result<TrainAck, LearnError> {
        if class >= self.config.classes {
            return Err(LearnError::UnknownClass {
                class,
                classes: self.config.classes,
            });
        }
        if example.dim() != self.config.dim {
            return Err(LearnError::DimMismatch {
                expected: self.config.dim,
                found: example.dim(),
            });
        }
        self.accums[class].add_accum(example);
        self.counts[class] += 1;
        if retain {
            self.replay.insert(sample, (class as u32, example.clone()));
            while self.replay.len() > self.config.max_retained {
                let largest = *self.replay.keys().next_back().expect("non-empty");
                self.replay.remove(&largest);
            }
        }
        Ok(TrainAck {
            class,
            examples: self.counts.iter().sum(),
            retained: self.replay.len() as u64,
            epoch: self.epoch,
        })
    }

    /// The class the current accumulators assign to `example`, by
    /// cosine similarity with ties to the lowest class index. Zero
    /// norms score 0.
    fn predict_staged(&self, example: &AccumHv) -> usize {
        let example_norm = example.norm();
        let mut best = 0usize;
        let mut best_sim = f64::NEG_INFINITY;
        for (class, accum) in self.accums.iter().enumerate() {
            let denom = example_norm * accum.norm();
            let sim = if denom == 0.0 {
                0.0
            } else {
                accum.dot(example) as f64 / denom
            };
            if sim > best_sim {
                best_sim = sim;
                best = class;
            }
        }
        best
    }

    /// One chopin2-style pass over the replay buffer: every example the
    /// current accumulators misclassify is subtracted from the wrong
    /// prototype and added to the right one. Returns the number of
    /// errors made (before correction) this pass.
    pub fn retrain_epoch(&mut self) -> u64 {
        let mut errors = 0u64;
        let samples: Vec<u64> = self.replay.keys().copied().collect();
        for sample in samples {
            let (label, example) = self.replay.get(&sample).expect("retained").clone();
            let predicted = self.predict_staged(&example);
            if predicted != label as usize {
                self.accums[predicted].sub_accum(&example);
                self.accums[label as usize].add_accum(&example);
                errors += 1;
            }
        }
        self.epoch += 1;
        errors
    }

    /// Runs up to `epochs` retraining passes, stopping early after a
    /// pass with zero errors.
    pub fn retrain(&mut self, epochs: u32) -> RetrainReport {
        let mut errors_per_epoch = Vec::new();
        for _ in 0..epochs {
            let errors = self.retrain_epoch();
            errors_per_epoch.push(errors);
            if errors == 0 {
                break;
            }
        }
        RetrainReport {
            epochs_requested: epochs,
            epochs_run: errors_per_epoch.len() as u32,
            errors_per_epoch,
            retained: self.replay.len() as u64,
            epoch: self.epoch,
        }
    }

    /// An immutable classification snapshot of the current prototypes:
    /// each accumulator sign-binarized (zero components resolve to
    /// `+1`) and packed into a [`Codebook`] for word-level scanning.
    pub fn snapshot(&self) -> Result<PrototypeSnapshot, LearnError> {
        let items: Vec<_> = self.accums.iter().map(AccumHv::sign_bipolar).collect();
        let prototypes = Codebook::from_items(items)
            .map_err(|e| LearnError::InvalidConfig(format!("snapshot codebook: {e}")))?;
        Ok(PrototypeSnapshot {
            prototypes,
            counts: self.counts.clone(),
            epoch: self.epoch,
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.config.classes
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &LearnConfig {
        &self.config
    }

    /// Retraining epochs run so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-class observation counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Examples currently in the replay buffer.
    pub fn retained(&self) -> usize {
        self.replay.len()
    }

    /// The raw per-class accumulators (artifact serialization).
    pub fn accumulators(&self) -> &[AccumHv] {
        &self.accums
    }
}

/// An immutable, sign-binarized view of a [`PrototypeModel`], packed
/// for scanning. This is what readers classify against; it never
/// changes after construction, so sharing it via `Arc` is torn-read
/// free by construction.
#[derive(Debug, Clone)]
pub struct PrototypeSnapshot {
    prototypes: Codebook,
    counts: Vec<u64>,
    epoch: u64,
}

impl PrototypeSnapshot {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.prototypes.dim()
    }

    /// The epoch counter of the staging model this snapshot was taken
    /// from.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-class observation counts at snapshot time.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The sign-binarized prototypes.
    pub fn prototypes(&self) -> &Codebook {
        &self.prototypes
    }

    /// Scores `query` against every class prototype and returns the
    /// best `top_k` classes by normalized dot similarity (ties resolve
    /// to the lowest class index).
    pub fn classify(&self, query: &AccumHv, top_k: usize) -> Result<Classification, LearnError> {
        if query.dim() != self.dim() {
            return Err(LearnError::DimMismatch {
                expected: self.dim(),
                found: query.dim(),
            });
        }
        let k = top_k.max(1).min(self.classes());
        let hits = self
            .prototypes
            .top_k(query, k)
            .into_iter()
            .map(|hit| ClassHit {
                class: hit.index,
                sim: hit.sim,
            })
            .collect();
        Ok(Classification {
            hits,
            epoch: self.epoch,
        })
    }

    /// The single best class for `query`.
    pub fn predict(&self, query: &AccumHv) -> Result<ClassHit, LearnError> {
        Ok(self.classify(query, 1)?.hits[0])
    }
}

/// Thread-safe owner of a staging [`PrototypeModel`].
///
/// Writers (`Train` / `Retrain` ops) lock the staging model; readers
/// never touch it — they classify against the last published
/// [`PrototypeSnapshot`], which the registry swaps atomically.
#[derive(Debug)]
pub struct Learner {
    model: Mutex<PrototypeModel>,
}

impl Learner {
    /// A learner over an empty model.
    pub fn new(config: LearnConfig) -> Result<Self, LearnError> {
        Ok(Self::from_model(PrototypeModel::new(config)?))
    }

    /// Wraps an existing staging model (artifact loading).
    pub fn from_model(model: PrototypeModel) -> Self {
        Self {
            model: Mutex::new(model),
        }
    }

    /// Bundles one labelled example; see [`PrototypeModel::observe`].
    pub fn observe(
        &self,
        class: usize,
        sample: u64,
        example: &AccumHv,
        retain: bool,
    ) -> Result<TrainAck, LearnError> {
        self.model.lock().observe(class, sample, example, retain)
    }

    /// Runs up to `epochs` retraining passes; see
    /// [`PrototypeModel::retrain`].
    pub fn retrain(&self, epochs: u32) -> RetrainReport {
        self.model.lock().retrain(epochs)
    }

    /// Snapshots the current prototypes; see
    /// [`PrototypeModel::snapshot`].
    pub fn snapshot(&self) -> Result<PrototypeSnapshot, LearnError> {
        self.model.lock().snapshot()
    }

    /// Runs `f` with the staging model locked — one lock acquisition
    /// for a whole batch of observations, or for artifact export.
    pub fn with_model<R>(&self, f: impl FnOnce(&mut PrototypeModel) -> R) -> R {
        f(&mut self.model.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng_from_seed;
    use rand::Rng;

    fn random_example(dim: usize, rng: &mut impl Rng) -> AccumHv {
        AccumHv::from_components(
            (0..dim)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect(),
        )
    }

    /// A noisy example of `class`: the class's base pattern with a few
    /// components flipped.
    fn class_example(base: &[AccumHv], class: usize, noise: usize, rng: &mut impl Rng) -> AccumHv {
        let mut comps: Vec<i32> = (0..base[class].dim())
            .map(|i| base[class].component(i))
            .collect();
        for _ in 0..noise {
            let i = rng.gen_range(0..comps.len());
            comps[i] = -comps[i];
        }
        AccumHv::from_components(comps)
    }

    fn base_patterns(classes: usize, dim: usize, seed: u64) -> Vec<AccumHv> {
        let mut rng = rng_from_seed(seed);
        (0..classes)
            .map(|_| random_example(dim, &mut rng))
            .collect()
    }

    #[test]
    fn config_validation_rejects_degenerate_shapes() {
        assert!(matches!(
            PrototypeModel::new(LearnConfig::new(0, 64)),
            Err(LearnError::InvalidConfig(_))
        ));
        assert!(matches!(
            PrototypeModel::new(LearnConfig::new(3, 0)),
            Err(LearnError::InvalidConfig(_))
        ));
        assert!(PrototypeModel::new(LearnConfig::new(1, 1)).is_ok());
    }

    #[test]
    fn observe_validates_class_and_dim() {
        let mut model = PrototypeModel::new(LearnConfig::new(2, 16)).expect("valid");
        let mut rng = rng_from_seed(1);
        let example = random_example(16, &mut rng);
        let wrong_dim = random_example(8, &mut rng);
        assert_eq!(
            model.observe(2, 0, &example, false),
            Err(LearnError::UnknownClass {
                class: 2,
                classes: 2
            })
        );
        assert_eq!(
            model.observe(0, 0, &wrong_dim, false),
            Err(LearnError::DimMismatch {
                expected: 16,
                found: 8
            })
        );
        let ack = model.observe(0, 0, &example, true).expect("valid");
        assert_eq!(ack.class, 0);
        assert_eq!(ack.examples, 1);
        assert_eq!(ack.retained, 1);
        assert_eq!(ack.epoch, 0);
    }

    #[test]
    fn training_learns_separable_classes() {
        let (classes, dim) = (4, 256);
        let base = base_patterns(classes, dim, 11);
        let mut model = PrototypeModel::new(LearnConfig::new(classes, dim)).expect("valid");
        let mut rng = rng_from_seed(12);
        let mut sample = 0u64;
        for _ in 0..16 {
            for class in 0..classes {
                let example = class_example(&base, class, dim / 16, &mut rng);
                model.observe(class, sample, &example, true).expect("valid");
                sample += 1;
            }
        }
        let snapshot = model.snapshot().expect("snapshot");
        let mut correct = 0;
        for class in 0..classes {
            for _ in 0..8 {
                let query = class_example(&base, class, dim / 16, &mut rng);
                if snapshot.predict(&query).expect("predicts").class == class {
                    correct += 1;
                }
            }
        }
        assert!(correct >= 28, "only {correct}/32 correct");
    }

    #[test]
    fn retraining_reduces_errors_and_stops_early() {
        // Heavily overlapping classes so plain bundling actually makes
        // errors retraining can fix.
        let (classes, dim) = (3, 128);
        let base = base_patterns(classes, dim, 21);
        let mut model = PrototypeModel::new(LearnConfig::new(classes, dim)).expect("valid");
        let mut rng = rng_from_seed(22);
        let mut sample = 0u64;
        for _ in 0..24 {
            for class in 0..classes {
                let example = class_example(&base, class, dim / 3, &mut rng);
                model.observe(class, sample, &example, true).expect("valid");
                sample += 1;
            }
        }
        let report = model.retrain(50);
        assert_eq!(report.epochs_requested, 50);
        assert_eq!(report.epochs_run as usize, report.errors_per_epoch.len());
        assert_eq!(report.retained, 72);
        assert_eq!(report.epoch, model.epoch());
        if report.epochs_run < 50 {
            assert_eq!(*report.errors_per_epoch.last().expect("ran"), 0);
        }
        let first = report.errors_per_epoch[0];
        let last = *report.errors_per_epoch.last().expect("ran");
        assert!(last <= first, "errors grew: {first} → {last}");
    }

    #[test]
    fn observe_order_is_unobservable() {
        let (classes, dim) = (3, 64);
        let base = base_patterns(classes, dim, 31);
        let mut rng = rng_from_seed(32);
        let examples: Vec<(usize, u64, AccumHv)> = (0..30)
            .map(|i| {
                let class = i % classes;
                (class, i as u64, class_example(&base, class, 4, &mut rng))
            })
            .collect();
        let mut forward = PrototypeModel::new(LearnConfig::new(classes, dim)).expect("valid");
        let mut backward = PrototypeModel::new(LearnConfig::new(classes, dim)).expect("valid");
        for (class, sample, example) in &examples {
            forward
                .observe(*class, *sample, example, true)
                .expect("valid");
        }
        for (class, sample, example) in examples.iter().rev() {
            backward
                .observe(*class, *sample, example, true)
                .expect("valid");
        }
        assert_eq!(forward, backward);
        forward.retrain(5);
        backward.retrain(5);
        assert_eq!(forward, backward);
    }

    #[test]
    fn replay_capacity_keeps_smallest_sample_ids() {
        let mut config = LearnConfig::new(1, 8);
        config.max_retained = 4;
        let mut rng = rng_from_seed(41);
        // Insert ids high-to-low: every insert over capacity must evict
        // the largest retained id, ending with the 4 smallest.
        let mut model = PrototypeModel::new(config).expect("valid");
        for sample in (0..8u64).rev() {
            let example = random_example(8, &mut rng);
            model.observe(0, sample, &example, true).expect("valid");
        }
        assert_eq!(model.retained(), 4);
        let retained: Vec<u64> = model.replay.keys().copied().collect();
        assert_eq!(retained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_sample_ids_overwrite() {
        let mut model = PrototypeModel::new(LearnConfig::new(2, 8)).expect("valid");
        let mut rng = rng_from_seed(51);
        let first = random_example(8, &mut rng);
        let second = random_example(8, &mut rng);
        model.observe(0, 7, &first, true).expect("valid");
        model.observe(1, 7, &second, true).expect("valid");
        assert_eq!(model.retained(), 1);
        let (label, example) = model.replay.get(&7).expect("retained");
        assert_eq!(*label, 1);
        assert_eq!(example, &second);
    }

    #[test]
    fn snapshot_is_immutable_under_further_training() {
        let (classes, dim) = (2, 32);
        let base = base_patterns(classes, dim, 61);
        let mut model = PrototypeModel::new(LearnConfig::new(classes, dim)).expect("valid");
        let mut rng = rng_from_seed(62);
        for sample in 0..10u64 {
            let class = (sample % 2) as usize;
            let example = class_example(&base, class, 2, &mut rng);
            model.observe(class, sample, &example, true).expect("valid");
        }
        let snapshot = model.snapshot().expect("snapshot");
        let query = class_example(&base, 0, 2, &mut rng);
        let before = snapshot.classify(&query, classes).expect("classifies");
        for sample in 10..40u64 {
            let example = random_example(dim, &mut rng);
            model.observe(1, sample, &example, true).expect("valid");
        }
        model.retrain(3);
        let after = snapshot.classify(&query, classes).expect("classifies");
        assert_eq!(before, after);
    }

    #[test]
    fn classify_validates_dim_and_clamps_k() {
        let model = PrototypeModel::new(LearnConfig::new(3, 16)).expect("valid");
        let snapshot = model.snapshot().expect("snapshot");
        let mut rng = rng_from_seed(71);
        let query = random_example(8, &mut rng);
        assert_eq!(
            snapshot.classify(&query, 1),
            Err(LearnError::DimMismatch {
                expected: 16,
                found: 8
            })
        );
        let query = random_example(16, &mut rng);
        assert_eq!(
            snapshot.classify(&query, 0).expect("classifies").hits.len(),
            1
        );
        assert_eq!(
            snapshot
                .classify(&query, 99)
                .expect("classifies")
                .hits
                .len(),
            3
        );
    }

    #[test]
    fn ties_resolve_to_lowest_class_index() {
        // Two identical (all-zero → all +1 after sign) prototypes tie on
        // every query; the winner must be class 0.
        let model = PrototypeModel::new(LearnConfig::new(2, 16)).expect("valid");
        let snapshot = model.snapshot().expect("snapshot");
        let mut rng = rng_from_seed(81);
        let query = random_example(16, &mut rng);
        assert_eq!(snapshot.predict(&query).expect("predicts").class, 0);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let (classes, dim) = (3, 32);
        let base = base_patterns(classes, dim, 91);
        let mut model = PrototypeModel::new(LearnConfig::new(classes, dim)).expect("valid");
        let mut rng = rng_from_seed(92);
        for sample in 0..12u64 {
            let class = (sample % 3) as usize;
            let example = class_example(&base, class, 3, &mut rng);
            model
                .observe(class, sample, &example, false)
                .expect("valid");
        }
        let rebuilt = PrototypeModel::from_parts(
            *model.config(),
            model.accumulators().to_vec(),
            model.counts().to_vec(),
            model.epoch(),
        )
        .expect("valid parts");
        assert_eq!(rebuilt.accumulators(), model.accumulators());
        assert_eq!(rebuilt.counts(), model.counts());
        assert_eq!(rebuilt.retained(), 0);

        assert!(matches!(
            PrototypeModel::from_parts(
                *model.config(),
                model.accumulators()[..2].to_vec(),
                model.counts().to_vec(),
                0
            ),
            Err(LearnError::InvalidConfig(_))
        ));
        assert!(matches!(
            PrototypeModel::from_parts(
                *model.config(),
                vec![AccumHv::zeros(16), AccumHv::zeros(16), AccumHv::zeros(16)],
                model.counts().to_vec(),
                0
            ),
            Err(LearnError::DimMismatch { .. })
        ));
    }

    #[test]
    fn learner_wraps_model_thread_safely() {
        use std::sync::Arc;
        let learner = Arc::new(Learner::new(LearnConfig::new(2, 64)).expect("valid"));
        let base = base_patterns(2, 64, 101);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let learner = Arc::clone(&learner);
            let base = base.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = rng_from_seed(200 + t);
                for i in 0..25u64 {
                    let class = ((t + i) % 2) as usize;
                    let example = class_example(&base, class, 4, &mut rng);
                    learner
                        .observe(class, t * 25 + i, &example, true)
                        .expect("valid");
                }
            }));
        }
        for handle in handles {
            handle.join().expect("no panic");
        }
        let snapshot = learner.snapshot().expect("snapshot");
        assert_eq!(snapshot.counts().iter().sum::<u64>(), 100);
        assert_eq!(learner.with_model(|m| m.retained()), 100);
    }
}
