//! Class–class (C-C) factorization problems.
//!
//! A C-C model represents an object as the bare binding of one item per
//! class, `H = a_1 ⊙ a_2 ⊙ … ⊙ a_F` (§II-B), and scenes as bundles of such
//! products. Factorizing `H` back into its constituents is the problem the
//! resonator network and the IMC factorizer solve, and the problem
//! FactorHD's encoding sidesteps; this module generates the shared
//! instances all of them are benchmarked on.

use hdc::{AccumHv, BipolarHv, Codebook, HdcError};
use rand::Rng;

/// One C-C factorization instance: `F` codebooks of `M` items each, a
/// target product vector, and the ground-truth item indices.
///
/// ```
/// use factorhd_baselines::FactorizationProblem;
///
/// let problem = FactorizationProblem::derive(7, 3, 16, 512);
/// assert_eq!(problem.num_factors(), 3);
/// assert_eq!(problem.problem_size(), 16f64.powi(3));
/// assert!(problem.verify(problem.solution()));
/// ```
#[derive(Debug, Clone)]
pub struct FactorizationProblem {
    codebooks: Vec<Codebook>,
    target: BipolarHv,
    solution: Vec<usize>,
}

impl FactorizationProblem {
    /// Samples a problem with fresh random codebooks and a random solution.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyCodebook`] / [`HdcError::InvalidDimension`]
    /// for degenerate `m` or `dim`, and [`HdcError::InvalidDimension`] if
    /// `f == 0`.
    pub fn random<R: Rng + ?Sized>(
        f: usize,
        m: usize,
        dim: usize,
        rng: &mut R,
    ) -> Result<Self, HdcError> {
        if f == 0 {
            return Err(HdcError::InvalidDimension(0));
        }
        let codebooks: Vec<Codebook> = (0..f)
            .map(|_| Codebook::random(m, dim, rng))
            .collect::<Result<_, _>>()?;
        let solution: Vec<usize> = (0..f).map(|_| rng.gen_range(0..m)).collect();
        let target = product_of(&codebooks, &solution);
        Ok(FactorizationProblem {
            codebooks,
            target,
            solution,
        })
    }

    /// Deterministically derives a problem from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `f`, `m` or `dim` is zero.
    pub fn derive(seed: u64, f: usize, m: usize, dim: usize) -> Self {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xCCFA_C702]));
        FactorizationProblem::random(f, m, dim, &mut rng).expect("validated parameters")
    }

    /// Number of factors `F`.
    #[inline]
    pub fn num_factors(&self) -> usize {
        self.codebooks.len()
    }

    /// Items per codebook `M`.
    #[inline]
    pub fn items_per_factor(&self) -> usize {
        self.codebooks[0].len()
    }

    /// Hypervector dimension `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.target.dim()
    }

    /// Search-space size `M^F`, the paper's problem-size axis.
    pub fn problem_size(&self) -> f64 {
        (self.items_per_factor() as f64).powi(self.num_factors() as i32)
    }

    /// The factor codebooks.
    #[inline]
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// Codebook of factor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn codebook(&self, i: usize) -> &Codebook {
        &self.codebooks[i]
    }

    /// The target product hypervector to factorize.
    #[inline]
    pub fn target(&self) -> &BipolarHv {
        &self.target
    }

    /// The ground-truth item indices.
    #[inline]
    pub fn solution(&self) -> &[usize] {
        &self.solution
    }

    /// Whether `candidate` reproduces the target product exactly.
    ///
    /// Note this is semantic verification (re-bind and compare), not index
    /// comparison: distinct index tuples with identical products (vanishing
    /// probability at real dimensions) would also verify.
    pub fn verify(&self, candidate: &[usize]) -> bool {
        if candidate.len() != self.codebooks.len() {
            return false;
        }
        product_of(&self.codebooks, candidate) == self.target
    }

    /// Bundles several item-index tuples into a multi-object C-C scene
    /// (`Σ_o ∏_i a_{i,o}`), kept in `Z^D` like the paper's scene bundles.
    ///
    /// # Panics
    ///
    /// Panics if any tuple has the wrong arity or an out-of-range index.
    pub fn encode_bundle(&self, objects: &[Vec<usize>]) -> AccumHv {
        let mut acc = AccumHv::zeros(self.dim());
        for indices in objects {
            let product = product_of(&self.codebooks, indices);
            acc.add_bipolar(&product, 1);
        }
        acc
    }
}

/// Binds one item per codebook into a product vector.
///
/// # Panics
///
/// Panics if `indices.len() != codebooks.len()` or an index is out of range.
pub(crate) fn product_of(codebooks: &[Codebook], indices: &[usize]) -> BipolarHv {
    assert_eq!(
        indices.len(),
        codebooks.len(),
        "need one index per codebook"
    );
    let mut product = codebooks[0].item(indices[0]).clone();
    for (cb, &idx) in codebooks.iter().zip(indices).skip(1) {
        product.bind_assign(cb.item(idx));
    }
    product
}

/// The outcome of an iterative factorizer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveOutcome {
    /// The estimated item index per factor.
    pub estimate: Vec<usize>,
    /// Iterations executed (full sweeps over all factors).
    pub iterations: usize,
    /// Whether the solver stopped at a self-declared solution / fixed point
    /// (as opposed to exhausting its iteration budget).
    pub converged: bool,
}

impl SolveOutcome {
    /// Whether the estimate matches the problem's ground truth.
    pub fn is_correct(&self, problem: &FactorizationProblem) -> bool {
        problem.verify(&self.estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng_from_seed;

    #[test]
    fn derive_is_deterministic() {
        let a = FactorizationProblem::derive(5, 3, 8, 256);
        let b = FactorizationProblem::derive(5, 3, 8, 256);
        assert_eq!(a.solution(), b.solution());
        assert_eq!(a.target(), b.target());
    }

    #[test]
    fn solution_verifies() {
        let p = FactorizationProblem::derive(11, 4, 8, 256);
        assert!(p.verify(p.solution()));
    }

    #[test]
    fn wrong_candidates_fail_verification() {
        let p = FactorizationProblem::derive(12, 3, 8, 256);
        let mut wrong = p.solution().to_vec();
        wrong[0] = (wrong[0] + 1) % 8;
        assert!(!p.verify(&wrong));
        assert!(!p.verify(&[0, 1]));
    }

    #[test]
    fn target_is_quasi_orthogonal_to_items() {
        let p = FactorizationProblem::derive(13, 3, 8, 4096);
        for cb in p.codebooks() {
            for item in cb {
                assert!(p.target().sim(item).abs() < 0.1);
            }
        }
    }

    #[test]
    fn unbinding_all_but_one_reveals_item() {
        use hdc::Bind;
        let p = FactorizationProblem::derive(14, 3, 8, 1024);
        let s = p.solution();
        let unbound = p
            .target()
            .bind(p.codebook(1).item(s[1]))
            .bind(p.codebook(2).item(s[2]));
        assert_eq!(&unbound, p.codebook(0).item(s[0]));
    }

    #[test]
    fn random_rejects_degenerate() {
        let mut rng = rng_from_seed(1);
        assert!(FactorizationProblem::random(0, 4, 64, &mut rng).is_err());
        assert!(FactorizationProblem::random(2, 0, 64, &mut rng).is_err());
        assert!(FactorizationProblem::random(2, 4, 0, &mut rng).is_err());
    }

    #[test]
    fn bundle_keeps_members_recoverable() {
        let p = FactorizationProblem::derive(15, 3, 8, 4096);
        let objects = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let bundle = p.encode_bundle(&objects);
        for obj in &objects {
            let product = product_of(p.codebooks(), obj);
            assert!(bundle.sim_bipolar(&product) > 0.3);
        }
    }

    #[test]
    fn outcome_correctness() {
        let p = FactorizationProblem::derive(16, 2, 4, 256);
        let good = SolveOutcome {
            estimate: p.solution().to_vec(),
            iterations: 1,
            converged: true,
        };
        assert!(good.is_correct(&p));
        let bad = SolveOutcome {
            estimate: vec![(p.solution()[0] + 1) % 4, p.solution()[1]],
            iterations: 1,
            converged: true,
        };
        assert!(!bad.is_correct(&p));
    }
}
