//! # factorhd-baselines — comparison systems from the FactorHD evaluation
//!
//! Every baseline the paper benchmarks FactorHD against, implemented from
//! the cited sources:
//!
//! * [`Resonator`] — the resonator network (Frady et al. 2020), the
//!   classic iterative factorizer for class–class products.
//! * [`ImcFactorizer`] — the in-memory stochastic factorizer (Langenegger
//!   et al. 2023), simulated with device read noise and sparse threshold
//!   activations (see DESIGN.md for the hardware substitution).
//! * [`CiModel`] — the class–instance role–filler model, which factorizes
//!   in one unbind but suffers the superposition catastrophe and the
//!   problem of 2.
//! * [`FactorizationProblem`] — shared class–class problem instances
//!   (`H = a_1 ⊙ … ⊙ a_F`), plus the [`oracle`] exhaustive search that
//!   demonstrates the `M^F` combination blow-up.
//!
//! # Example
//!
//! ```
//! use factorhd_baselines::{FactorizationProblem, Resonator, ResonatorConfig};
//!
//! let problem = FactorizationProblem::derive(1, 3, 8, 1024);
//! let outcome = Resonator::new(ResonatorConfig::default()).solve(&problem);
//! assert!(outcome.is_correct(&problem));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ci_model;
mod imc;
pub mod oracle;
mod problem;
mod resonator;

pub use ci_model::CiModel;
pub use imc::{ImcConfig, ImcFactorizer};
pub use problem::{FactorizationProblem, SolveOutcome};
pub use resonator::{Resonator, ResonatorConfig};
