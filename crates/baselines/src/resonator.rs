//! The resonator network factorizer (Frady, Kent, Olshausen & Sommer,
//! *Neural Computation* 2020) — the first C-C baseline of Fig. 4.
//!
//! Each factor keeps an estimate `x̂_i`, initialized to the superposition of
//! its whole codebook. One sweep updates every factor in turn:
//!
//! ```text
//! x̂_i ← sign( A_iᵀ (A_i · (target ⊙ x̂_1 ⊙ … x̂_{i-1} ⊙ x̂_{i+1} … ⊙ x̂_F)) )
//! ```
//!
//! i.e. unbind the other estimates, project onto the codebook (similarity
//! weights), clean up by weighted superposition, and re-binarize. The
//! search dynamics resonate toward a fixed point when the problem size is
//! within the network's operational capacity and fall into limit cycles
//! beyond it — which is exactly the capacity cliff Fig. 4(a) shows.

use crate::{FactorizationProblem, SolveOutcome};
use hdc::BipolarHv;

/// Configuration for [`Resonator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResonatorConfig {
    /// Maximum number of full sweeps before giving up.
    pub max_iterations: usize,
    /// Stop as soon as the current estimates reproduce the target product
    /// exactly (a self-detectable solution in the noiseless C-C setting).
    pub early_exit_on_solution: bool,
}

impl Default for ResonatorConfig {
    /// Defaults follow the evaluation protocol of the IMC-factorizer paper:
    /// a generous iteration budget with early exit on solution.
    fn default() -> Self {
        ResonatorConfig {
            max_iterations: 5_000,
            early_exit_on_solution: true,
        }
    }
}

/// A resonator network bound to one factorization problem.
///
/// ```
/// use factorhd_baselines::{FactorizationProblem, Resonator, ResonatorConfig};
///
/// let problem = FactorizationProblem::derive(3, 3, 8, 1024);
/// let outcome = Resonator::new(ResonatorConfig::default()).solve(&problem);
/// assert!(outcome.is_correct(&problem));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Resonator {
    config: ResonatorConfig,
}

impl Resonator {
    /// Creates a resonator with the given configuration.
    pub fn new(config: ResonatorConfig) -> Self {
        Resonator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ResonatorConfig {
        &self.config
    }

    /// Runs the resonator dynamics on `problem`.
    pub fn solve(&self, problem: &FactorizationProblem) -> SolveOutcome {
        let f = problem.num_factors();
        // Initial estimates: superposition of each codebook.
        let mut estimates: Vec<BipolarHv> = problem
            .codebooks()
            .iter()
            .map(|cb| cb.superposition().sign_bipolar())
            .collect();

        for iteration in 1..=self.config.max_iterations {
            let mut changed = false;
            for i in 0..f {
                // Unbind the other factors' current estimates.
                let mut unbound = problem.target().clone();
                for (j, est) in estimates.iter().enumerate() {
                    if j != i {
                        unbound.bind_assign(est);
                    }
                }
                // Project onto the codebook and clean up.
                let weights = problem.codebook(i).dots_bipolar(&unbound);
                let new_estimate = problem
                    .codebook(i)
                    .weighted_superposition(&weights)
                    .sign_bipolar();
                if new_estimate != estimates[i] {
                    changed = true;
                    estimates[i] = new_estimate;
                }
            }

            let decoded = self.decode(problem, &estimates);
            if self.config.early_exit_on_solution && problem.verify(&decoded) {
                return SolveOutcome {
                    estimate: decoded,
                    iterations: iteration,
                    converged: true,
                };
            }
            if !changed {
                // Fixed point (possibly a spurious one).
                return SolveOutcome {
                    estimate: decoded,
                    iterations: iteration,
                    converged: true,
                };
            }
        }

        SolveOutcome {
            estimate: self.decode(problem, &estimates),
            iterations: self.config.max_iterations,
            converged: false,
        }
    }

    /// Reads out the codebook item with the largest **absolute** dot
    /// product per factor. Bipolar resonator dynamics are sign-symmetric:
    /// `(-a_1, -a_2, a_3)` reproduces the same product as
    /// `(a_1, a_2, a_3)`, so stable states may be item negations; decoding
    /// by |sim| recovers the underlying item either way.
    fn decode(&self, problem: &FactorizationProblem, estimates: &[BipolarHv]) -> Vec<usize> {
        estimates
            .iter()
            .enumerate()
            .map(|(i, est)| {
                let dots = problem.codebook(i).dots_bipolar(est);
                dots.iter()
                    .enumerate()
                    .max_by_key(|(_, &d)| d.abs())
                    .map(|(j, _)| j)
                    .expect("codebooks are non-empty")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_problems() {
        for seed in 0..10 {
            let problem = FactorizationProblem::derive(seed, 3, 8, 1024);
            let outcome = Resonator::new(ResonatorConfig::default()).solve(&problem);
            assert!(outcome.is_correct(&problem), "failed at seed {seed}");
            assert!(outcome.converged);
        }
    }

    #[test]
    fn solves_f4() {
        let problem = FactorizationProblem::derive(77, 4, 8, 2048);
        let outcome = Resonator::new(ResonatorConfig::default()).solve(&problem);
        assert!(outcome.is_correct(&problem));
    }

    #[test]
    fn iteration_budget_is_respected() {
        let problem = FactorizationProblem::derive(5, 3, 64, 256);
        let outcome = Resonator::new(ResonatorConfig {
            max_iterations: 2,
            early_exit_on_solution: true,
        })
        .solve(&problem);
        assert!(outcome.iterations <= 2);
    }

    #[test]
    fn accuracy_collapses_beyond_capacity() {
        // The capacity cliff: at D = 256 and M = 96 (problem size ~ 9e5)
        // the resonator should fail on most trials — this is the Fig. 4(a)
        // behaviour FactorHD is compared against.
        let mut failures = 0;
        let trials = 8;
        for seed in 0..trials {
            let problem = FactorizationProblem::derive(1000 + seed, 3, 96, 256);
            let outcome = Resonator::new(ResonatorConfig {
                max_iterations: 100,
                early_exit_on_solution: true,
            })
            .solve(&problem);
            if !outcome.is_correct(&problem) {
                failures += 1;
            }
        }
        assert!(failures >= trials / 2, "only {failures}/{trials} failures");
    }

    #[test]
    fn iterations_grow_with_problem_size() {
        let avg_iters = |m: usize, dim: usize| -> f64 {
            let mut total = 0usize;
            let trials = 6;
            for seed in 0..trials {
                let problem = FactorizationProblem::derive(2000 + seed, 3, m, dim);
                total += Resonator::new(ResonatorConfig::default())
                    .solve(&problem)
                    .iterations;
            }
            total as f64 / trials as f64
        };
        let small = avg_iters(4, 1024);
        let large = avg_iters(32, 1024);
        assert!(
            large >= small,
            "iterations should not shrink with problem size: {small} vs {large}"
        );
    }
}
