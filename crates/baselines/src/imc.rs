//! The in-memory-computing (IMC) stochastic factorizer (Langenegger et al.,
//! *Nature Nanotechnology* 2023) — the second C-C baseline of Fig. 4.
//!
//! The IMC factorizer augments resonator dynamics with two ingredients that
//! raise its operational capacity by orders of magnitude:
//!
//! 1. **Intrinsic stochasticity** — analog in-memory dot products carry
//!    device read noise. The noise perturbs the similarity estimates every
//!    sweep, which breaks the limit cycles that trap the noiseless
//!    resonator.
//! 2. **Sparse threshold activations** — only similarities above an
//!    activation threshold contribute to the cleanup superposition, keeping
//!    cross-talk from the many near-orthogonal non-solutions out of the
//!    estimate.
//!
//! The physical crossbar is simulated here (see DESIGN.md substitutions):
//! additive Gaussian noise on normalized similarity reads models PCM device
//! noise, and the threshold/cleanup pipeline follows the published
//! algorithm. The paper's headline operating point (D = 256, F = 3,
//! M = 256, ≈ 99.7% accuracy at ≈ 3312 average iterations) sets the scale
//! our defaults are tuned around.

use crate::{FactorizationProblem, SolveOutcome};
use hdc::BipolarHv;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;

/// Configuration for [`ImcFactorizer`].
///
/// Noise and threshold are expressed in units of the similarity noise
/// floor `1/√D` (the standard deviation of a random normalized dot
/// product), matching how the published factorizer sets its activation
/// thresholds relative to the device noise distribution. This keeps one
/// parameter set meaningful across hypervector dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImcConfig {
    /// Maximum number of full sweeps before giving up.
    pub max_iterations: usize,
    /// Device read-noise standard deviation, in units of `1/√D`.
    pub read_noise_sigma: f64,
    /// Activation threshold in units of `1/√D`; noisy reads below it
    /// contribute nothing to the cleanup.
    pub activation_sigma: f64,
    /// RNG seed for the stochastic dynamics.
    pub seed: u64,
}

impl Default for ImcConfig {
    /// Defaults reproduce the qualitative behaviour of the published
    /// factorizer: well above resonator capacity, converging in up to
    /// thousands of sweeps near its own capacity limit.
    fn default() -> Self {
        ImcConfig {
            max_iterations: 10_000,
            read_noise_sigma: 1.0,
            activation_sigma: 2.0,
            seed: 0x13C0_FFEE,
        }
    }
}

/// A simulated in-memory stochastic factorizer.
///
/// ```
/// use factorhd_baselines::{FactorizationProblem, ImcConfig, ImcFactorizer};
///
/// let problem = FactorizationProblem::derive(21, 3, 8, 1024);
/// let outcome = ImcFactorizer::new(ImcConfig::default()).solve(&problem);
/// assert!(outcome.is_correct(&problem));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ImcFactorizer {
    config: ImcConfig,
}

impl ImcFactorizer {
    /// Creates a factorizer with the given configuration.
    pub fn new(config: ImcConfig) -> Self {
        ImcFactorizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ImcConfig {
        &self.config
    }

    /// Runs the stochastic dynamics on `problem`.
    pub fn solve(&self, problem: &FactorizationProblem) -> SolveOutcome {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[self.config.seed, 0x1A7C]));
        self.solve_with_rng(problem, &mut rng)
    }

    /// Runs the stochastic dynamics with an external RNG (lets trial
    /// harnesses decorrelate repeated runs on the same problem).
    pub fn solve_with_rng<R: Rng + ?Sized>(
        &self,
        problem: &FactorizationProblem,
        rng: &mut R,
    ) -> SolveOutcome {
        let f = problem.num_factors();
        let dim = problem.dim() as f64;
        let noise_floor = 1.0 / dim.sqrt();
        let read_noise = self.config.read_noise_sigma * noise_floor;
        let activation_threshold = self.config.activation_sigma * noise_floor;
        let mut estimates: Vec<BipolarHv> = problem
            .codebooks()
            .iter()
            .map(|cb| cb.superposition().sign_bipolar())
            .collect();

        for iteration in 1..=self.config.max_iterations {
            for i in 0..f {
                let mut unbound = problem.target().clone();
                for (j, est) in estimates.iter().enumerate() {
                    if j != i {
                        unbound.bind_assign(est);
                    }
                }
                // Analog similarity read: exact dot + device noise.
                let dots = problem.codebook(i).dots_bipolar(&unbound);
                let mut weights = vec![0i64; dots.len()];
                let mut any_active = false;
                let mut best = (0usize, f64::NEG_INFINITY);
                for (j, &dot) in dots.iter().enumerate() {
                    let noisy = dot as f64 / dim + read_noise * sample_standard_normal(rng);
                    if noisy > best.1 {
                        best = (j, noisy);
                    }
                    if noisy > activation_threshold {
                        // Quantized conductance weight (the crossbar applies
                        // the activation magnitude).
                        weights[j] = (noisy * 1024.0) as i64;
                        any_active = true;
                    }
                }
                if !any_active {
                    // All reads below threshold: fall back to the strongest
                    // read (the hardware's winner-take-all circuit).
                    weights[best.0] = 1;
                }
                estimates[i] = problem
                    .codebook(i)
                    .weighted_superposition(&weights)
                    .sign_bipolar();
            }

            let decoded = self.decode(problem, &estimates);
            if problem.verify(&decoded) {
                return SolveOutcome {
                    estimate: decoded,
                    iterations: iteration,
                    converged: true,
                };
            }
        }

        SolveOutcome {
            estimate: self.decode(problem, &estimates),
            iterations: self.config.max_iterations,
            converged: false,
        }
    }

    /// Reads out the codebook item with the largest **absolute** dot
    /// product per factor. Bipolar resonator dynamics are sign-symmetric:
    /// `(-a_1, -a_2, a_3)` reproduces the same product as
    /// `(a_1, a_2, a_3)`, so stable states may be item negations; decoding
    /// by |sim| recovers the underlying item either way.
    fn decode(&self, problem: &FactorizationProblem, estimates: &[BipolarHv]) -> Vec<usize> {
        estimates
            .iter()
            .enumerate()
            .map(|(i, est)| {
                let dots = problem.codebook(i).dots_bipolar(est);
                dots.iter()
                    .enumerate()
                    .max_by_key(|(_, &d)| d.abs())
                    .map(|(j, _)| j)
                    .expect("codebooks are non-empty")
            })
            .collect()
    }
}

/// Minimal standard-normal sampling (Box–Muller) so the crate does not need
/// a distributions dependency.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal draw.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Resonator, ResonatorConfig};

    #[test]
    fn solves_small_problems() {
        for seed in 0..8 {
            let problem = FactorizationProblem::derive(seed, 3, 8, 1024);
            let outcome = ImcFactorizer::new(ImcConfig::default()).solve(&problem);
            assert!(outcome.is_correct(&problem), "failed at seed {seed}");
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = hdc::rng_from_seed(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| rand_distr_normal::sample_standard_normal(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_sampler_shape_and_tails() {
        // Pin the Box–Muller sampler beyond its first two moments: a
        // standard normal has zero skew, zero excess kurtosis, and puts
        // 5% of its mass outside ±1.96.
        let mut rng = hdc::rng_from_seed(10);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| rand_distr_normal::sample_standard_normal(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let moment = |p: i32| samples.iter().map(|x| (x - mean).powi(p)).sum::<f64>() / n as f64;
        let sd = moment(2).sqrt();
        let skew = moment(3) / sd.powi(3);
        let excess_kurtosis = moment(4) / sd.powi(4) - 3.0;
        assert!(skew.abs() < 0.05, "skew {skew}");
        assert!(
            excess_kurtosis.abs() < 0.1,
            "excess kurtosis {excess_kurtosis}"
        );
        let outside = samples.iter().filter(|x| x.abs() > 1.96).count() as f64 / n as f64;
        assert!(
            (outside - 0.05).abs() < 0.01,
            "two-sided tail mass {outside}"
        );
        assert!(samples.iter().all(|x| x.is_finite()), "all draws finite");
    }

    #[test]
    fn normal_sampler_is_deterministic() {
        let draw = |seed: u64| -> Vec<f64> {
            let mut rng = hdc::rng_from_seed(seed);
            (0..64)
                .map(|_| rand_distr_normal::sample_standard_normal(&mut rng))
                .collect()
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }

    #[test]
    fn beats_resonator_beyond_its_capacity() {
        // At D = 256, M = 96 the noiseless resonator mostly fails (limit
        // cycles); the stochastic factorizer still solves a majority.
        let trials = 6;
        let mut imc_ok = 0;
        let mut res_ok = 0;
        for seed in 0..trials {
            let problem = FactorizationProblem::derive(3000 + seed, 3, 96, 256);
            let imc = ImcFactorizer::new(ImcConfig {
                max_iterations: 3000,
                ..ImcConfig::default()
            })
            .solve(&problem);
            if imc.is_correct(&problem) {
                imc_ok += 1;
            }
            let res = Resonator::new(ResonatorConfig {
                max_iterations: 100,
                early_exit_on_solution: true,
            })
            .solve(&problem);
            if res.is_correct(&problem) {
                res_ok += 1;
            }
        }
        assert!(
            imc_ok > res_ok,
            "IMC should outperform the resonator here: {imc_ok} vs {res_ok}"
        );
        assert!(imc_ok >= trials - 1, "IMC solved only {imc_ok}/{trials}");
    }

    #[test]
    fn deterministic_given_seed() {
        let problem = FactorizationProblem::derive(50, 3, 16, 512);
        let a = ImcFactorizer::new(ImcConfig::default()).solve(&problem);
        let b = ImcFactorizer::new(ImcConfig::default()).solve(&problem);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_respected() {
        let problem = FactorizationProblem::derive(51, 3, 64, 128);
        let outcome = ImcFactorizer::new(ImcConfig {
            max_iterations: 3,
            ..ImcConfig::default()
        })
        .solve(&problem);
        assert!(outcome.iterations <= 3);
    }
}
