//! The class–instance (C-I) model baseline (§II-B).
//!
//! A C-I model represents an object as the bundle of role–filler bindings,
//! `H = class_1 ⊙ item_1 + class_2 ⊙ item_2 + …` — Kanerva's "what is the
//! dollar of Mexico?" scheme. Factorization is a single unbind per class
//! (`class_i ⊙ H = item_i + noise`), which is cheap, but the representation
//! breaks down for multiple objects:
//!
//! * **Superposition catastrophe** — bundling two objects mixes their
//!   fillers per class; the model recovers *sets* of items per class but
//!   loses which items belonged to the same object.
//! * **The problem of 2** — identical objects collapse into one (their
//!   bundles merely rescale the same vector).
//!
//! Both failure modes are exercised by tests below and by the Fig. 4(e,f)
//! comparison harness.

use hdc::{AccumHv, BipolarHv, Codebook, HdcError, SearchHit};
use rand::Rng;

/// A class–instance model: one role vector per class and one filler
/// codebook per class.
///
/// ```
/// use factorhd_baselines::CiModel;
///
/// let model = CiModel::derive(3, 3, 16, 2048);
/// let hv = model.encode_object(&[2, 9, 4]);
/// assert_eq!(model.factorize_object(&hv), vec![2, 9, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct CiModel {
    roles: Vec<BipolarHv>,
    fillers: Vec<Codebook>,
}

impl CiModel {
    /// Samples a model with `f` classes of `m` fillers each.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDimension`] if `f == 0` or `dim == 0`,
    /// and [`HdcError::EmptyCodebook`] if `m == 0`.
    pub fn random<R: Rng + ?Sized>(
        f: usize,
        m: usize,
        dim: usize,
        rng: &mut R,
    ) -> Result<Self, HdcError> {
        if f == 0 {
            return Err(HdcError::InvalidDimension(0));
        }
        let roles = (0..f).map(|_| BipolarHv::random(dim, rng)).collect();
        let fillers = (0..f)
            .map(|_| Codebook::random(m, dim, rng))
            .collect::<Result<_, _>>()?;
        Ok(CiModel { roles, fillers })
    }

    /// Deterministically derives a model from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `f`, `m` or `dim` is zero.
    pub fn derive(seed: u64, f: usize, m: usize, dim: usize) -> Self {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 0xC1_0DE1]));
        CiModel::random(f, m, dim, &mut rng).expect("validated parameters")
    }

    /// Number of classes `F`.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.roles.len()
    }

    /// Fillers per class `M`.
    #[inline]
    pub fn items_per_class(&self) -> usize {
        self.fillers[0].len()
    }

    /// Hypervector dimension `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.roles[0].dim()
    }

    /// The filler codebook of class `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn fillers(&self, i: usize) -> &Codebook {
        &self.fillers[i]
    }

    /// Encodes one object: `Σ_i role_i ⊙ filler_{i, items[i]}`.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != num_classes()` or an index is out of range.
    pub fn encode_object(&self, items: &[usize]) -> AccumHv {
        assert_eq!(items.len(), self.roles.len(), "one item per class required");
        let mut acc = AccumHv::zeros(self.dim());
        for (i, &item) in items.iter().enumerate() {
            let bound = hdc::Bind::bind(&self.roles[i], self.fillers[i].item(item));
            acc.add_bipolar(&bound, 1);
        }
        acc
    }

    /// Encodes several objects into one bundle (where the superposition
    /// catastrophe lives).
    ///
    /// # Panics
    ///
    /// Same conditions as [`CiModel::encode_object`].
    pub fn encode_scene(&self, objects: &[Vec<usize>]) -> AccumHv {
        let mut acc = AccumHv::zeros(self.dim());
        for items in objects {
            acc.add_accum(&self.encode_object(items));
        }
        acc
    }

    /// Factorizes a single-object representation: per class, unbind the
    /// role and take the closest filler.
    pub fn factorize_object(&self, hv: &AccumHv) -> Vec<usize> {
        (0..self.roles.len())
            .map(|i| self.unbind_class(hv, i).index)
            .collect()
    }

    /// The best filler of class `i` after role unbinding, with similarity.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn unbind_class(&self, hv: &AccumHv, i: usize) -> SearchHit {
        let unbound = hdc::Bind::bind(hv, &self.roles[i]);
        self.fillers[i]
            .best_match(&unbound)
            .expect("codebooks are non-empty")
    }

    /// Per-class candidate *sets* for a multi-object bundle: every filler
    /// whose unbound similarity clears `threshold`. The model can list the
    /// items present per class but cannot attribute them to objects — the
    /// superposition catastrophe.
    pub fn factorize_scene_items(&self, hv: &AccumHv, threshold: f64) -> Vec<Vec<SearchHit>> {
        (0..self.roles.len())
            .map(|i| {
                let unbound = hdc::Bind::bind(hv, &self.roles[i]);
                self.fillers[i].above_threshold(&unbound, threshold)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic() {
        let a = CiModel::derive(3, 3, 8, 256);
        let b = CiModel::derive(3, 3, 8, 256);
        assert_eq!(a.encode_object(&[1, 2, 3]), b.encode_object(&[1, 2, 3]));
    }

    #[test]
    fn single_object_roundtrip() {
        let model = CiModel::derive(7, 3, 32, 2048);
        for items in [[0usize, 0, 0], [31, 15, 7], [5, 20, 11]] {
            let hv = model.encode_object(&items);
            assert_eq!(model.factorize_object(&hv), items.to_vec());
        }
    }

    #[test]
    fn noisy_roundtrip_survives() {
        let model = CiModel::derive(8, 3, 16, 4096);
        let hv = model.encode_object(&[3, 8, 12]);
        // Perturb by bundling an unrelated random vector.
        let mut rng = hdc::rng_from_seed(4);
        let mut noisy = hv.clone();
        noisy.add_bipolar(&BipolarHv::random(4096, &mut rng), 1);
        assert_eq!(model.factorize_object(&noisy), vec![3, 8, 12]);
    }

    #[test]
    fn scene_items_are_listed_per_class() {
        let model = CiModel::derive(9, 3, 16, 8192);
        let scene = model.encode_scene(&[vec![1, 2, 3], vec![4, 5, 6]]);
        let sets = model.factorize_scene_items(&scene, 0.15);
        assert_eq!(sets[0].iter().map(|h| h.index).collect::<Vec<_>>().len(), 2);
        for (class, expected) in [(0usize, [1usize, 4]), (1, [2, 5]), (2, [3, 6])] {
            let found: Vec<usize> = sets[class].iter().map(|h| h.index).collect();
            for e in expected {
                assert!(found.contains(&e), "class {class} missing item {e}");
            }
        }
    }

    #[test]
    fn superposition_catastrophe_loses_object_identity() {
        // The two scenes {(1,2),(3,4)} and {(1,4),(3,2)} produce the same
        // per-class item sets — the C-I representation cannot tell them
        // apart at the set level. (Their encodings are identical vectors!)
        let model = CiModel::derive(10, 2, 8, 1024);
        let a = model.encode_scene(&[vec![1, 2], vec![3, 4]]);
        let b = model.encode_scene(&[vec![1, 4], vec![3, 2]]);
        assert_eq!(a, b, "C-I bundles of swapped fillers must collide");
    }

    #[test]
    fn problem_of_2_collapses_duplicates() {
        // Two copies of the same object just rescale the bundle: the model
        // cannot represent multiplicity.
        let model = CiModel::derive(11, 3, 8, 1024);
        let single = model.encode_object(&[1, 2, 3]);
        let double = model.encode_scene(&[vec![1, 2, 3], vec![1, 2, 3]]);
        let mut scaled = single.clone();
        scaled.scale(2);
        assert_eq!(double, scaled);
    }

    #[test]
    fn random_rejects_degenerate() {
        let mut rng = hdc::rng_from_seed(1);
        assert!(CiModel::random(0, 4, 64, &mut rng).is_err());
        assert!(CiModel::random(2, 0, 64, &mut rng).is_err());
    }
}
