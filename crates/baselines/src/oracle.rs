//! Exhaustive oracle factorizer.
//!
//! Scans all `M^F` item combinations and returns the product most similar
//! to the target — the brute force §II-B describes ("necessitating
//! exploration of all item vector combinations"). Exact but exponential;
//! used to validate the iterative solvers on small instances and to
//! demonstrate the combination-count blow-up FactorHD avoids.

use crate::{problem::product_of, FactorizationProblem, SolveOutcome};

/// Runs the exhaustive search on `problem`, counting every similarity
/// measurement as one "iteration".
///
/// Returns the best-matching combination; with a noiseless C-C target this
/// is always the exact solution.
///
/// # Panics
///
/// Panics if the search space `M^F` exceeds `limit` (guards against
/// accidentally launching a `16M`-combination scan in a test).
pub fn exhaustive_solve(problem: &FactorizationProblem, limit: usize) -> SolveOutcome {
    let f = problem.num_factors();
    let m = problem.items_per_factor();
    let total = m.checked_pow(f as u32).unwrap_or(usize::MAX);
    assert!(
        total <= limit,
        "exhaustive search over {total} combinations exceeds the limit of {limit}"
    );

    let mut best: Option<(Vec<usize>, i64)> = None;
    let mut indices = vec![0usize; f];
    let mut checked = 0usize;
    loop {
        let product = product_of(problem.codebooks(), &indices);
        let dot = problem.target().dot(&product);
        checked += 1;
        if best.as_ref().is_none_or(|(_, b)| dot > *b) {
            best = Some((indices.clone(), dot));
        }
        // Advance mixed-radix counter.
        let mut done = true;
        for slot in indices.iter_mut().rev() {
            *slot += 1;
            if *slot < m {
                done = false;
                break;
            }
            *slot = 0;
        }
        if done {
            break;
        }
    }

    let (estimate, _) = best.expect("at least one combination");
    SolveOutcome {
        estimate,
        iterations: checked,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_always_finds_the_solution() {
        for seed in 0..5 {
            let problem = FactorizationProblem::derive(seed, 3, 6, 512);
            let outcome = exhaustive_solve(&problem, 1_000);
            assert!(outcome.is_correct(&problem));
            assert_eq!(outcome.iterations, 6usize.pow(3));
        }
    }

    #[test]
    fn oracle_cost_is_m_pow_f() {
        let problem = FactorizationProblem::derive(9, 2, 7, 256);
        let outcome = exhaustive_solve(&problem, 100);
        assert_eq!(outcome.iterations, 49);
    }

    #[test]
    #[should_panic(expected = "exceeds the limit")]
    fn oracle_refuses_oversized_searches() {
        let problem = FactorizationProblem::derive(10, 3, 64, 64);
        let _ = exhaustive_solve(&problem, 1_000);
    }
}
